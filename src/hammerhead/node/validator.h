// A networked HammerHead/Bullshark validator.
//
// One Validator object is one node of the simulated deployment: it proposes
// one header per round referencing 2f+1 parent certificates, countersigns
// other validators' headers (at most once per (author, round), durably
// recorded before the vote leaves the node), assembles certificates from
// 2f+1 votes, inserts certificates into its local DAG and runs the Bullshark
// committer with a pluggable leader-schedule policy (HammerHead, round-robin,
// static, Shoal-like).
//
// Bullshark's leader-awareness lives in the round-advance rule: when leaving
// an even round r (so that the next header votes on round r's anchor), the
// proposer waits for the anchor certificate of round r or a leader timeout —
// this wait is exactly the latency the paper's round-robin baseline pays for
// crashed leaders, and what HammerHead avoids by evicting them from the
// schedule.
//
// CPU model: the node is a single simulated core. Every inbound message and
// every commit charges a configurable cost to a busy-until watermark;
// processing starts when the core frees up. This produces realistic queueing
// (latency knees near saturation) without modelling threads.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "hammerhead/common/stamped_set.h"
#include "hammerhead/consensus/committer.h"
#include "hammerhead/core/policies.h"
#include "hammerhead/crypto/committee.h"
#include "hammerhead/dag/dag.h"
#include "hammerhead/net/network.h"
#include "hammerhead/node/messages.h"
#include "hammerhead/sim/simulator.h"
#include "hammerhead/storage/store.h"

namespace hammerhead::node {

/// Fault behaviours a validator can be configured with. Everything except
/// Honest is for fault-injection tests and the Byzantine demo example.
enum class Behavior {
  Honest,
  /// Proposes two conflicting headers per round, one to each half of the
  /// committee. Vote uniqueness must confine it to at most one certificate.
  Equivocator,
  /// Never countersigns other validators' headers.
  VoteWithholder,
  /// Omits the leader's certificate from its parent edges whenever a quorum
  /// of other parents is available — the "withholding their votes for honest
  /// leaders" strategy of Section 7 that HammerHead's vote-frequency scoring
  /// punishes (the withholder earns no reputation points and is evicted).
  ParentWithholder,
  /// Broadcasts its own headers only after an extra delay — the "just slow
  /// enough" leader of the static-leader discussion.
  SlowProposer,
};

/// Runtime-steerable Byzantine directives, flipped by an adversary strategy
/// while the validator runs (in contrast to Behavior, which is fixed at
/// construction). The validator reads them through a const pointer installed
/// with set_directives(); the harness::DirectiveBook owns the storage and
/// adversary strategies mutate it from serial-shard events, so reads from
/// the validator's own sharded events never race a write.
struct ByzantineDirectives {
  /// Propose two conflicting headers per round (split-committee recipient
  /// sets), like Behavior::Equivocator but toggleable mid-run.
  bool equivocate = false;
  /// Refuse to countersign headers authored by this validator (targeted
  /// vote withholding against e.g. the upcoming anchor's author).
  /// kInvalidValidator = withhold from no one.
  ValidatorIndex withhold_votes_for = kInvalidValidator;
};

struct NodeConfig {
  // Proposer.
  /// Per-header payload cap. This doubles as the coarse backpressure model:
  /// when crashed leaders slow the round rate, per-round capacity
  /// (proposers x cap x round rate) caps achievable throughput — the
  /// mechanism behind Bullshark's 25-40% throughput loss under faults in
  /// Figure 2.
  std::size_t max_batch_txs = 600;
  /// How long to wait for the anchor certificate when leaving an even round.
  SimTime leader_timeout = millis(2'500);
  /// Minimum spacing between our own proposals (Narwhal's header delay: time
  /// spent accumulating a batch before the next header). Dominates the round
  /// cadence when the WAN round trip is faster.
  SimTime min_round_delay = millis(500);
  consensus::CommitRule commit_rule = consensus::CommitRule::DirectSupport;
  /// How the committer detects direct commits (incremental index vs the
  /// reference rescan path; see consensus::TriggerScan).
  consensus::TriggerScan trigger_scan = consensus::TriggerScan::Indexed;
  /// DAG index tuning (ancestor-bitmap window).
  dag::IndexConfig index;
  /// Rounds of DAG history kept below the last committed anchor.
  Round gc_depth = 100;
  bool gc_enabled = true;

  // CPU cost model (single simulated core).
  SimTime cost_verify_header = micros(30);
  SimTime cost_verify_vote = micros(15);
  SimTime cost_verify_cert = micros(40);
  /// Per-signature component of certificate verification; makes large
  /// committees measurably more expensive (the paper's 100-validator peak is
  /// ~3,500 tx/s vs ~4,000 tx/s for 10/50).
  SimTime cost_verify_cert_per_signer = micros(2);
  SimTime cost_sign = micros(20);
  SimTime cost_store_write = micros(5);
  SimTime cost_per_tx_include = micros(5);
  SimTime cost_per_tx_verify = micros(90);
  SimTime cost_per_tx_execute = micros(140);
  /// If false, CPU costs are ignored entirely (protocol-logic unit tests).
  bool model_cpu = true;

  // Fault behaviour.
  Behavior behavior = Behavior::Honest;
  SimTime slow_proposer_delay = millis(500);

  std::size_t max_fetch_response_certs = 500;
  /// A fetch for a missing certificate may be re-issued after this delay
  /// (covers lost/truncated responses during catch-up).
  SimTime fetch_retry_delay = millis(500);

  /// Dispatch slotting for sharded execution (0 = off): CPU-queue
  /// completion events are rounded UP to this grid, so the heavy message
  /// handlers of different validators land in the same engine batch and
  /// spread across Simulator workers. The busy-until watermark still
  /// advances by the exact modeled cost; only the wakeup is quantized
  /// (timer-slack coalescing). Deterministic at any worker count.
  SimTime dispatch_slot = 0;

  /// Seed for key derivation; must match the Committee's seed.
  std::uint64_t key_seed = 1;
};

struct ValidatorStats {
  std::uint64_t headers_proposed = 0;
  std::uint64_t votes_sent = 0;
  std::uint64_t certs_formed = 0;
  std::uint64_t certs_received = 0;
  std::uint64_t leader_timeouts = 0;
  std::uint64_t fetches_sent = 0;
  std::uint64_t equivocations_observed = 0;
  /// Conflicting header pairs this validator itself proposed (Equivocator
  /// behavior or an equivocate directive).
  std::uint64_t equivocations_sent = 0;
  /// Votes refused under a withhold_votes_for directive (the static
  /// Behavior::VoteWithholder does not count here — it never votes at all).
  std::uint64_t votes_withheld = 0;
  std::uint64_t txs_executed = 0;
  std::uint64_t restarts = 0;
  std::uint64_t state_syncs_requested = 0;
  std::uint64_t state_syncs_completed = 0;
};

class Validator final : public net::MsgSink {
 public:
  using PolicyFactory =
      std::function<std::unique_ptr<core::LeaderSchedulePolicy>(
          const crypto::Committee&)>;
  /// Invoked on every committed sub-DAG (after recovery replay is complete;
  /// replayed commits are not re-reported).
  using CommitCallback = std::function<void(
      ValidatorIndex self, const consensus::CommittedSubDag&)>;

  Validator(sim::Simulator& simulator, net::Network& network,
            const crypto::Committee& committee, ValidatorIndex self,
            storage::Store& store, NodeConfig config, PolicyFactory policies,
            CommitCallback on_commit);
  ~Validator();

  /// Begin operating: registers the network handler and proposes round 0.
  void start();

  /// Submit a client transaction into this validator's mempool.
  void submit_tx(dag::Transaction tx);

  /// Crash: drop all volatile state behaviourally (the node stops reacting);
  /// the Store survives.
  void crash();

  /// Recover from the durable store and resume participation.
  void restart();

  bool crashed() const { return crashed_; }
  ValidatorIndex index() const { return self_; }

  /// Multiply every CPU cost by `factor` (degraded-node injection).
  void set_cpu_slowdown(double factor) { cpu_slowdown_ = factor; }

  /// Install runtime Byzantine directives (nullptr = honest). The pointee is
  /// owned by the caller (harness::DirectiveBook) and must outlive the
  /// validator; writes happen on serial-shard adversary events only.
  void set_directives(const ByzantineDirectives* directives) {
    directives_ = directives;
  }

  // Introspection for tests and metrics.
  const dag::Dag& dag() const { return *dag_; }
  const consensus::BullsharkCommitter& committer() const { return *committer_; }
  const core::LeaderSchedulePolicy& policy() const { return *policy_; }
  core::LeaderSchedulePolicy& policy() { return *policy_; }
  const ValidatorStats& stats() const { return stats_; }
  Round last_proposed_round() const { return last_proposed_round_; }
  std::size_t mempool_size() const { return mempool_.size(); }
  std::size_t buffered_certs() const { return buffered_.size(); }
  std::uint64_t state_syncs_completed() const {
    return stats_.state_syncs_completed;
  }

  /// net::MsgSink: queue the message behind the simulated core and dispatch
  /// when the CPU frees up (allocation-free: pooled records + raw events).
  void deliver(ValidatorIndex from, const net::MessagePtr& msg) override;

  /// Checkpoint support: serialize this node's full deterministic state —
  /// durable store tables (certs / votes / meta), the DAG's logical content
  /// (representation-independent across hot and cold-tiered rounds), the
  /// committer and leader-schedule positioning, protocol round bookkeeping,
  /// pending votes, buffered certificates, the mempool and the stats
  /// counters. Crashed validators serialize durable state and counters only
  /// (volatile state is conceptually gone until restart()). Used by
  /// harness/checkpoint.{h,cpp} to prove a resumed run restored every node
  /// byte-for-byte (docs/checkpoint.md).
  void serialize_state(ByteWriter& w) const;

 private:
  // --- wiring ---------------------------------------------------------------
  /// MsgKind-switched dispatch to the typed handlers.
  void dispatch(ValidatorIndex from, const net::MessagePtr& msg);
  static void dispatch_trampoline(void* ctx, std::uint64_t arg) {
    static_cast<Validator*>(ctx)->run_dispatch(static_cast<std::uint32_t>(arg));
  }
  void run_dispatch(std::uint32_t idx);
  SimTime message_cost(const net::Message& msg) const;
  SimTime scaled(SimTime cost) const;
  void charge_cpu(SimTime cost);

  // --- protocol -------------------------------------------------------------
  void handle_header(ValidatorIndex from, const dag::HeaderPtr& header);
  void handle_vote(const dag::Vote& vote);
  void handle_cert(ValidatorIndex from, const dag::CertPtr& cert);
  void handle_fetch_req(ValidatorIndex from, const FetchReqMsg& req);
  void handle_fetch_resp(ValidatorIndex from, const FetchRespMsg& resp);
  void handle_state_sync_req(ValidatorIndex from, const StateSyncReqMsg& req);
  void handle_state_sync_resp(ValidatorIndex from,
                              const StateSyncRespMsg& resp);
  /// Detect that we have fallen behind the GC horizon (incremental fetch can
  /// no longer reconnect our DAG) and request a snapshot.
  void maybe_request_state_sync(const dag::Certificate& evidence,
                                ValidatorIndex source);

  /// Insert a certificate (buffering if causally incomplete) and drive the
  /// committer / round advance. `source` is who to fetch missing parents
  /// from (kInvalidValidator when locally formed).
  void ingest_cert(const dag::CertPtr& cert, ValidatorIndex source);
  /// Post-insert bookkeeping for `cert` (when `inserted`, it is already in
  /// the DAG via try_insert), plus the iterative flush of buffered children
  /// that became causally complete.
  void insert_ready_cert(const dag::CertPtr& cert, bool inserted = false);
  void request_fetch(ValidatorIndex source, std::vector<Digest> missing);
  /// While certificates are buffered, periodically re-request their missing
  /// ancestry from rotating peers — responses can be truncated or lost, and
  /// deep catch-up (after recovery) needs repeated chunks.
  void arm_fetch_retry_timer();
  void retry_fetches();

  void try_advance();
  void propose(Round round);
  /// Behavior::Equivocator's proposal path (implemented in byzantine.cpp):
  /// two conflicting headers, one per committee half.
  void propose_equivocating(Round round, std::vector<Digest> parents,
                            std::vector<dag::Transaction> txs);
  dag::HeaderPtr build_header(Round round, std::vector<Digest> parents,
                              std::vector<dag::Transaction> txs);
  void broadcast_header(const dag::HeaderPtr& header);
  void maybe_vote(ValidatorIndex from, const dag::HeaderPtr& header);

  void on_subdag_committed(const consensus::CommittedSubDag& subdag);
  void run_garbage_collection();

  std::vector<dag::Transaction> take_batch();

  // --- durable state (survives crash) ----------------------------------------
  // Tables: "certs" (round, author) -> cert; "voted" (author, round) ->
  // header digest; "meta" key -> u64 (last proposed round). References are
  // resolved once in the constructor — the name lookup (string hash) was
  // measurable on the per-message hot path.
  storage::Table<std::pair<Round, ValidatorIndex>, dag::CertPtr>& cert_table() {
    return *cert_table_;
  }
  storage::Table<std::pair<ValidatorIndex, Round>, Digest>& voted_table() {
    return *voted_table_;
  }
  storage::Table<std::string, std::uint64_t>& meta_table() {
    return *meta_table_;
  }
  storage::Table<std::string, core::PolicySnapshot>& policy_snapshot_table();
  storage::Table<std::string, consensus::CommitterSnapshot>&
  committer_snapshot_table();

  sim::Simulator& sim_;
  net::Network& network_;
  const crypto::Committee& committee_;
  ValidatorIndex self_;
  storage::Store& store_;
  NodeConfig config_;
  PolicyFactory policy_factory_;
  CommitCallback on_commit_;
  /// Runtime adversary directives; nullptr when honest. See set_directives().
  const ByzantineDirectives* directives_ = nullptr;
  crypto::Keypair keypair_;
  storage::Table<std::pair<Round, ValidatorIndex>, dag::CertPtr>* cert_table_;
  storage::Table<std::pair<ValidatorIndex, Round>, Digest>* voted_table_;
  storage::Table<std::string, std::uint64_t>* meta_table_;
  /// Quiescent hook publishing this validator's resolution snapshot at every
  /// sharded batch boundary (no-op before start() creates the DAG, and in
  /// serial runs, where the domain never advances). Removed in ~Validator.
  epoch::Domain::HookId resolver_hook_ = 0;

  /// Pooled CPU-queue records: one per in-flight inbound message between
  /// network delivery and dispatch; reused so the steady-state deliver path
  /// performs no heap allocation.
  struct PendingDispatch {
    net::MessagePtr msg;
    std::uint64_t inc = 0;
    ValidatorIndex from = 0;
  };
  std::deque<PendingDispatch> dispatch_pool_;
  std::vector<std::uint32_t> dispatch_free_;

  // Volatile state (lost on crash, rebuilt on restart).
  std::unique_ptr<core::LeaderSchedulePolicy> policy_;
  std::unique_ptr<dag::Dag> dag_;
  std::unique_ptr<consensus::BullsharkCommitter> committer_;
  std::deque<dag::Transaction> mempool_;
  bool started_ = false;
  bool crashed_ = false;
  bool replaying_ = false;
  double cpu_slowdown_ = 1.0;
  SimTime cpu_free_at_ = 0;
  std::uint64_t incarnation_ = 0;  // bumped on crash; stale timers no-op

  Round last_proposed_round_ = 0;
  bool proposed_anything_ = false;
  SimTime last_propose_time_ = 0;
  bool round_delay_timer_armed_ = false;

  // Round bookkeeping for the advance rule.
  std::unordered_map<Round, Stake> round_stake_;
  std::unordered_map<Round, SimTime> quorum_reached_at_;
  Round max_quorum_round_ = 0;
  bool have_quorum_anywhere_ = false;
  std::optional<Round> leader_wait_round_;  // timer armed for this round

  // Vote collection for our own headers.
  struct PendingHeader {
    dag::HeaderPtr header;
    std::unordered_set<ValidatorIndex> voters;
    Stake voter_stake = 0;
    bool certified = false;
  };
  std::unordered_map<Digest, PendingHeader> our_pending_;

  // Certificates waiting for parents.
  std::unordered_map<Digest, dag::CertPtr> buffered_;
  std::unordered_map<Digest, std::size_t> missing_count_;
  std::unordered_map<Digest, std::vector<Digest>> waiting_children_;
  /// Missing digest -> earliest time a fresh fetch may be issued for it.
  std::unordered_map<Digest, SimTime> outstanding_fetches_;
  /// Reused (epoch-stamped) dedup set for the retry sweep over buffered
  /// certificates' missing ancestry — no per-call unordered_set allocation.
  StampedSet<Digest> retry_seen_;
  /// Reused scratch buffers for the ingest hot path (not reentrant: the
  /// flush loop never nests another ingest).
  std::vector<Digest> missing_scratch_;
  std::vector<dag::CertPtr> ready_scratch_;
  bool fetch_timer_armed_ = false;
  std::uint32_t fetch_peer_rotation_ = 0;
  SimTime state_sync_retry_at_ = 0;  // no sync in flight when <= now

  ValidatorStats stats_;
};

}  // namespace hammerhead::node

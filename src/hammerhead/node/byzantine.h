// Byzantine / faulty validator behaviours.
//
// The Validator class implements every behaviour behind NodeConfig::behavior;
// this header provides convenience constructors for the fault-injection
// configurations used by tests, benchmarks and the byzantine demo example.
// Evaluating BFT protocols under *arbitrary* Byzantine strategies is an open
// problem the paper acknowledges (claim C3, citing Twins); the behaviours
// here are the specific adversaries the paper's design discussion calls out:
// equivocation (safety stressor), vote withholding (the strategy HammerHead's
// scoring punishes, Section 7) and slow proposing (the static-leader risk).
#pragma once

#include "hammerhead/node/validator.h"

namespace hammerhead::node {

/// An honest configuration with the given behaviour substituted.
NodeConfig with_behavior(NodeConfig base, Behavior behavior);

/// A "just slow enough" proposer (Section 7's static-leader discussion):
/// delays its own header broadcasts by `delay` but otherwise follows the
/// protocol, so it never looks crashed yet drags every round it leads.
NodeConfig slow_proposer(NodeConfig base, SimTime delay);

}  // namespace hammerhead::node

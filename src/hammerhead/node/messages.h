// Wire messages exchanged by validators (Narwhal primary protocol).
#pragma once

#include <memory>
#include <vector>

#include "hammerhead/consensus/committer.h"
#include "hammerhead/core/policies.h"
#include "hammerhead/dag/types.h"
#include "hammerhead/net/network.h"

namespace hammerhead::node {

struct HeaderMsg final : net::Message {
  dag::HeaderPtr header;

  std::size_t wire_size() const override { return header->wire_size(); }
  const char* type_name() const override { return "header"; }
  net::MsgKind kind() const override { return net::MsgKind::Header; }
};

struct VoteMsg final : net::Message {
  dag::Vote vote;

  std::size_t wire_size() const override { return 120; }
  const char* type_name() const override { return "vote"; }
  net::MsgKind kind() const override { return net::MsgKind::Vote; }
};

struct CertMsg final : net::Message {
  dag::CertPtr cert;

  std::size_t wire_size() const override { return cert->wire_size(); }
  const char* type_name() const override { return "cert"; }
  net::MsgKind kind() const override { return net::MsgKind::Cert; }
};

/// Request the given certificates (and, implicitly, their causal history down
/// to `have_up_to_round`, so a recovering validator catches up in one round
/// trip instead of one per DAG round).
struct FetchReqMsg final : net::Message {
  std::vector<Digest> digests;
  Round have_up_to_round = 0;

  std::size_t wire_size() const override {
    return 16 + digests.size() * Digest::kSize;
  }
  const char* type_name() const override { return "fetch-req"; }
  net::MsgKind kind() const override { return net::MsgKind::FetchReq; }
};

struct FetchRespMsg final : net::Message {
  /// Sorted by ascending round so the receiver can insert in order.
  /// Set via the constructor: wire_size() is called once per bandwidth-model
  /// hop, so the sum over certificates is cached at construction instead of
  /// being recomputed per call.
  explicit FetchRespMsg(std::vector<dag::CertPtr> response_certs)
      : certs(std::move(response_certs)) {
    for (const auto& c : certs) wire_size_ += c->wire_size();
  }

  std::vector<dag::CertPtr> certs;

  std::size_t wire_size() const override { return wire_size_; }
  const char* type_name() const override { return "fetch-resp"; }
  net::MsgKind kind() const override { return net::MsgKind::FetchResp; }

 private:
  std::size_t wire_size_ = 16;
};

/// Ask a peer for a full state snapshot. Sent when the requester has fallen
/// behind the garbage-collection horizon: the pruned part of the DAG can no
/// longer be fetched certificate-by-certificate, so the peer ships its
/// retained DAG suffix plus the consensus positioning (committer + policy
/// snapshots). This models the state-sync / checkpoint mechanism production
/// deployments run outside of consensus.
struct StateSyncReqMsg final : net::Message {
  Round have_up_to_round = 0;

  std::size_t wire_size() const override { return 16; }
  const char* type_name() const override { return "state-sync-req"; }
  net::MsgKind kind() const override { return net::MsgKind::StateSyncReq; }
};

struct StateSyncRespMsg final : net::Message {
  /// Construction computes the wire size once (same per-hop caching as
  /// FetchRespMsg): wire_size() is called per bandwidth-model hop.
  StateSyncRespMsg(Round floor, std::vector<dag::CertPtr> snapshot_certs,
                   consensus::CommitterSnapshot committer_snap,
                   core::PolicySnapshot policy_snap)
      : gc_floor(floor),
        certs(std::move(snapshot_certs)),
        committer(std::move(committer_snap)),
        policy(std::move(policy_snap)) {
    for (const auto& c : certs) wire_size_ += c->wire_size();
  }

  Round gc_floor = 0;
  /// All retained certificates (rounds >= gc_floor), ascending by round.
  std::vector<dag::CertPtr> certs;
  consensus::CommitterSnapshot committer;
  core::PolicySnapshot policy;

  std::size_t wire_size() const override { return wire_size_; }
  const char* type_name() const override { return "state-sync-resp"; }
  net::MsgKind kind() const override { return net::MsgKind::StateSyncResp; }

 private:
  std::size_t wire_size_ = 1024;
};

}  // namespace hammerhead::node

// Validator metrics exporter: snapshots a validator's protocol state into a
// monitor::MetricsRegistry, one labelled series per validator — what the
// paper's Grafana dashboard scrapes from each node (Appendix A).
#pragma once

#include "hammerhead/monitor/metrics_registry.h"
#include "hammerhead/node/validator.h"

namespace hammerhead::node {

/// Write/update the standard gauge+counter set for `validator` in `registry`
/// (idempotent; call on every scrape). Series are labelled
/// {validator="<index>"}.
void export_validator_metrics(const Validator& validator,
                              monitor::MetricsRegistry& registry);

/// Event-engine + message-fabric gauges (one unlabelled series set per
/// deployment): executed events, engine allocations/event, wheel batches,
/// cancel backlog, fanout pool. `events_per_sec_wall` is host-measured by
/// the caller (the harness times the run loop); pass 0 when unknown.
void export_engine_metrics(const sim::Simulator& sim, const net::Network& net,
                           double events_per_sec_wall,
                           monitor::MetricsRegistry& registry);

/// Scrape a whole committee into one registry.
template <typename ValidatorRange>
void export_committee_metrics(const ValidatorRange& validators,
                              monitor::MetricsRegistry& registry) {
  for (const auto& v : validators) export_validator_metrics(*v, registry);
}

}  // namespace hammerhead::node

#include "hammerhead/node/validator.h"

#include <algorithm>

#include "hammerhead/common/logging.h"
#include "hammerhead/node/byzantine.h"

namespace hammerhead::node {

Validator::Validator(sim::Simulator& simulator, net::Network& network,
                     const crypto::Committee& committee, ValidatorIndex self,
                     storage::Store& store, NodeConfig config,
                     PolicyFactory policies, CommitCallback on_commit)
    : sim_(simulator),
      network_(network),
      committee_(committee),
      self_(self),
      store_(store),
      config_(config),
      policy_factory_(std::move(policies)),
      on_commit_(std::move(on_commit)),
      keypair_(crypto::Keypair::derive(config.key_seed, self)),
      cert_table_(
          &store_.open_table<std::pair<Round, ValidatorIndex>, dag::CertPtr>(
              "certs")),
      voted_table_(
          &store_.open_table<std::pair<ValidatorIndex, Round>, Digest>(
              "voted")),
      meta_table_(&store_.open_table<std::string, std::uint64_t>("meta")) {
  HH_ASSERT(policy_factory_ != nullptr);
  resolver_hook_ = sim_.epoch_domain().add_quiescent_hook([this] {
    if (dag_ != nullptr) dag_->publish_resolution(sim_.epoch_domain());
  });
}

Validator::~Validator() {
  sim_.epoch_domain().remove_quiescent_hook(resolver_hook_);
}

storage::Table<std::string, core::PolicySnapshot>&
Validator::policy_snapshot_table() {
  return store_.open_table<std::string, core::PolicySnapshot>("policy_snap");
}

storage::Table<std::string, consensus::CommitterSnapshot>&
Validator::committer_snapshot_table() {
  return store_.open_table<std::string, consensus::CommitterSnapshot>(
      "committer_snap");
}

// --------------------------------------------------------------- lifecycle

void Validator::start() {
  HH_ASSERT_MSG(!started_, "validator " << self_ << " started twice");
  started_ = true;
  policy_ = policy_factory_(committee_);
  dag_ = std::make_unique<dag::Dag>(committee_, config_.index);
  committer_ = std::make_unique<consensus::BullsharkCommitter>(
      committee_, *dag_, *policy_,
      [this](const consensus::CommittedSubDag& sd) { on_subdag_committed(sd); },
      config_.commit_rule, [this] { return sim_.now(); },
      config_.trigger_scan);
  network_.register_sink(self_, this);
  propose(0);
}

void Validator::submit_tx(dag::Transaction tx) {
  if (crashed_) return;  // the client's connection is refused
  mempool_.push_back(tx);
}

void Validator::crash() {
  crashed_ = true;
  ++incarnation_;
  network_.crash(self_);
  // Volatile state is conceptually gone; restart() rebuilds it. We keep the
  // objects alive until then only because nothing will touch them (guards on
  // crashed_ + incarnation).
}

void Validator::restart() {
  HH_ASSERT_MSG(crashed_, "restart of a live validator " << self_);
  ++stats_.restarts;
  network_.recover(self_);

  // Drop every piece of volatile state.
  policy_ = policy_factory_(committee_);
  dag_ = std::make_unique<dag::Dag>(committee_, config_.index);
  committer_ = std::make_unique<consensus::BullsharkCommitter>(
      committee_, *dag_, *policy_,
      [this](const consensus::CommittedSubDag& sd) { on_subdag_committed(sd); },
      config_.commit_rule, [this] { return sim_.now(); },
      config_.trigger_scan);
  mempool_.clear();
  our_pending_.clear();
  buffered_.clear();
  missing_count_.clear();
  waiting_children_.clear();
  outstanding_fetches_.clear();
  round_stake_.clear();
  quorum_reached_at_.clear();
  max_quorum_round_ = 0;
  have_quorum_anywhere_ = false;
  leader_wait_round_.reset();
  round_delay_timer_armed_ = false;
  fetch_timer_armed_ = false;
  last_propose_time_ = sim_.now();
  cpu_free_at_ = sim_.now();

  // Durable state: what round we proposed last (never re-propose lower —
  // that could equivocate) and all certificates we had stored.
  last_proposed_round_ = 0;
  proposed_anything_ = false;
  if (auto lp = meta_table().get("last_proposed")) {
    last_proposed_round_ = static_cast<Round>(*lp);
    proposed_anything_ = true;
  }

  // If a state sync happened in a previous incarnation, resume from its
  // persisted horizon: install the snapshots, then replay the certificate
  // suffix on top (ordering beyond the snapshot is re-derived, which is
  // deterministic).
  if (auto floor = meta_table().get("sync_floor")) {
    dag_->prune_below(static_cast<Round>(*floor));
    if (auto psnap = policy_snapshot_table().get("snap"))
      policy_->install_snapshot(*psnap);
    if (auto csnap = committer_snapshot_table().get("snap"))
      committer_->install_snapshot(*csnap);
  }
  state_sync_retry_at_ = 0;

  // Replay certificates in (round, author) order; parents precede children
  // by construction, so plain insertion rebuilds the DAG, the committer
  // state, the schedule epochs and the reputation scores deterministically.
  replaying_ = true;
  std::vector<dag::CertPtr> certs;
  cert_table().for_each(
      [&](const std::pair<Round, ValidatorIndex>&, const dag::CertPtr& cert) {
        certs.push_back(cert);
      });
  for (const auto& cert : certs) {
    if (dag_->insert(cert)) {
      round_stake_[cert->round()] += committee_.stake_of(cert->author());
      if (round_stake_[cert->round()] >= committee_.quorum_threshold()) {
        if (!quorum_reached_at_.count(cert->round()))
          quorum_reached_at_[cert->round()] = sim_.now();
        if (!have_quorum_anywhere_ || cert->round() > max_quorum_round_) {
          max_quorum_round_ = cert->round();
          have_quorum_anywhere_ = true;
        }
      }
    }
  }
  committer_->process();
  replaying_ = false;
  crashed_ = false;

  HH_INFO("validator " << self_ << " recovered: " << certs.size()
                       << " certs, last proposed round "
                       << last_proposed_round_);
  // Resume: catch-up happens organically as fresh certificates arrive and
  // missing history is fetched; proposing resumes from the advance rule.
  try_advance();
}

// ----------------------------------------------------------------- cpu model

SimTime Validator::scaled(SimTime cost) const {
  return static_cast<SimTime>(static_cast<double>(cost) * cpu_slowdown_);
}

void Validator::charge_cpu(SimTime cost) {
  if (!config_.model_cpu) return;
  cpu_free_at_ = std::max(cpu_free_at_, sim_.now()) + scaled(cost);
}

SimTime Validator::message_cost(const net::Message& msg) const {
  if (!config_.model_cpu) return 0;
  switch (msg.kind()) {
    case net::MsgKind::Header: {
      const auto& h = static_cast<const HeaderMsg&>(msg);
      const std::size_t txs =
          h.header->payload ? h.header->payload->txs.size() : 0;
      return scaled(config_.cost_verify_header +
                    static_cast<SimTime>(txs) * config_.cost_per_tx_verify);
    }
    case net::MsgKind::Vote:
      return scaled(config_.cost_verify_vote);
    case net::MsgKind::Cert: {
      const auto& c = static_cast<const CertMsg&>(msg);
      return scaled(config_.cost_verify_cert +
                    config_.cost_verify_cert_per_signer *
                        static_cast<SimTime>(c.cert->signers.size()));
    }
    case net::MsgKind::FetchResp: {
      const auto& r = static_cast<const FetchRespMsg&>(msg);
      return scaled(config_.cost_verify_cert *
                    static_cast<SimTime>(
                        std::max<std::size_t>(1, r.certs.size())));
    }
    default:
      return scaled(micros(5));
  }
}

void Validator::deliver(ValidatorIndex from, const net::MessagePtr& msg) {
  if (crashed_ || !started_) return;
  // Single-core processing queue: work starts when the core frees up. The
  // in-flight message rides a pooled record + raw event — no std::function
  // capture allocation on the deliver path.
  const SimTime start = std::max(sim_.now(), cpu_free_at_);
  const SimTime done = start + message_cost(*msg);
  cpu_free_at_ = done;
  // Dispatch slotting: wake on the grid (so handlers across validators
  // batch into one sharded wave) while the CPU model keeps exact costs.
  SimTime fire_at = done;
  if (config_.dispatch_slot > 1)
    fire_at = ((done + config_.dispatch_slot - 1) / config_.dispatch_slot) *
              config_.dispatch_slot;
  std::uint32_t idx;
  if (!dispatch_free_.empty()) {
    idx = dispatch_free_.back();
    dispatch_free_.pop_back();
  } else {
    dispatch_pool_.emplace_back();
    idx = static_cast<std::uint32_t>(dispatch_pool_.size() - 1);
  }
  PendingDispatch& rec = dispatch_pool_[idx];
  rec.msg = msg;
  rec.inc = incarnation_;
  rec.from = from;
  sim_.schedule_raw_at(fire_at, &Validator::dispatch_trampoline, this, idx,
                       /*shard=*/self_);
}

void Validator::run_dispatch(std::uint32_t idx) {
  PendingDispatch rec = std::move(dispatch_pool_[idx]);  // slot ref released
  dispatch_free_.push_back(idx);
  if (crashed_ || rec.inc != incarnation_) return;
  dispatch(rec.from, rec.msg);
}

void Validator::dispatch(ValidatorIndex from, const net::MessagePtr& msg) {
  switch (msg->kind()) {
    case net::MsgKind::Header:
      handle_header(from, static_cast<const HeaderMsg&>(*msg).header);
      break;
    case net::MsgKind::Vote:
      handle_vote(static_cast<const VoteMsg&>(*msg).vote);
      break;
    case net::MsgKind::Cert:
      handle_cert(from, static_cast<const CertMsg&>(*msg).cert);
      break;
    case net::MsgKind::FetchReq:
      handle_fetch_req(from, static_cast<const FetchReqMsg&>(*msg));
      break;
    case net::MsgKind::FetchResp:
      handle_fetch_resp(from, static_cast<const FetchRespMsg&>(*msg));
      break;
    case net::MsgKind::StateSyncReq:
      handle_state_sync_req(from, static_cast<const StateSyncReqMsg&>(*msg));
      break;
    case net::MsgKind::StateSyncResp:
      handle_state_sync_resp(from,
                             static_cast<const StateSyncRespMsg&>(*msg));
      break;
    default:
      break;
  }
}

// ------------------------------------------------------------------ proposer

std::vector<dag::Transaction> Validator::take_batch() {
  std::vector<dag::Transaction> txs;
  const std::size_t n = std::min(mempool_.size(), config_.max_batch_txs);
  txs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    txs.push_back(mempool_.front());
    mempool_.pop_front();
  }
  return txs;
}

dag::HeaderPtr Validator::build_header(Round round,
                                       std::vector<Digest> parents,
                                       std::vector<dag::Transaction> txs) {
  auto payload = std::make_shared<dag::BlockPayload>();
  payload->txs = std::move(txs);
  auto header = std::make_shared<dag::Header>();
  header->author = self_;
  header->round = round;
  header->parents = std::move(parents);
  header->payload = std::move(payload);
  header->created_at = sim_.now();
  header->finalize(keypair_);
  return header;
}

void Validator::propose(Round round) {
  HH_ASSERT_MSG(!proposed_anything_ || round > last_proposed_round_,
                "validator " << self_ << " re-proposing round " << round);

  // Parent-cert checks are admission-time: every certificate reachable via
  // for_each_round_cert was verified before dag_->insert (broadcast path or
  // the batch_verify admission paths), so proposing re-reads warm memos and
  // never re-hashes a parent.
  std::vector<Digest> parents;
  if (round > 0) {
    std::optional<Digest> leader_digest;
    if (config_.behavior == Behavior::ParentWithholder) {
      if (auto leader_cert = dag_->get(round - 1, policy_->leader(round - 1)))
        leader_digest = leader_cert->digest();
    }
    Stake parent_stake = 0;
    std::vector<Digest> withheld;
    dag_->for_each_round_cert(round - 1, [&](const dag::CertPtr& cert) {
      if (leader_digest && cert->digest() == *leader_digest) {
        withheld.push_back(cert->digest());
        return;
      }
      parents.push_back(cert->digest());
      parent_stake += committee_.stake_of(cert->author());
    });
    // A header needs a quorum of parents; if withholding the leader would
    // break that, the withholder has to include it after all.
    if (parent_stake < committee_.quorum_threshold())
      for (const auto& d : withheld) parents.push_back(d);
    // Canonical parent order (author) for deterministic digests.
    std::sort(parents.begin(), parents.end());
  }

  auto txs = take_batch();
  charge_cpu(config_.cost_sign +
             static_cast<SimTime>(txs.size()) * config_.cost_per_tx_include +
             config_.cost_store_write);

  const bool equivocate =
      config_.behavior == Behavior::Equivocator ||
      (directives_ != nullptr && directives_->equivocate);
  if (equivocate && round > 0) {
    propose_equivocating(round, std::move(parents), std::move(txs));
    return;
  }

  dag::HeaderPtr header =
      build_header(round, std::move(parents), std::move(txs));
  last_proposed_round_ = round;
  proposed_anything_ = true;
  last_propose_time_ = sim_.now();
  meta_table().put("last_proposed", round);
  ++stats_.headers_proposed;

  // Self-vote, durably recorded like any other vote.
  voted_table().put({self_, round}, header->digest);
  PendingHeader pending;
  pending.header = header;
  pending.voters.insert(self_);
  pending.voter_stake = committee_.stake_of(self_);
  our_pending_.emplace(header->digest, std::move(pending));

  broadcast_header(header);
  // A committee where we alone reach quorum (stake) is impossible, so no
  // certificate can form from the self-vote only; wait for votes.
}

void Validator::broadcast_header(const dag::HeaderPtr& header) {
  auto msg = std::make_shared<HeaderMsg>();
  msg->header = header;
  if (config_.behavior == Behavior::SlowProposer) {
    const std::uint64_t inc = incarnation_;
    sim_.schedule_after(
        config_.slow_proposer_delay,
        [this, msg, inc]() {
          if (crashed_ || inc != incarnation_) return;
          network_.multicast(self_, msg);
        },
        /*shard=*/self_);
    return;
  }
  network_.multicast(self_, std::move(msg));
}

void Validator::try_advance() {
  if (crashed_ || !started_ || !have_quorum_anywhere_) return;
  const Round target = max_quorum_round_;
  const Round next = target + 1;
  if (proposed_anything_ && next <= last_proposed_round_) return;

  // Batch-accumulation spacing between our own proposals.
  const SimTime earliest = last_propose_time_ + config_.min_round_delay;
  if (proposed_anything_ && sim_.now() < earliest) {
    if (!round_delay_timer_armed_) {
      round_delay_timer_armed_ = true;
      const std::uint64_t inc = incarnation_;
      sim_.schedule_at(
          earliest,
          [this, inc]() {
            if (crashed_ || inc != incarnation_) return;
            round_delay_timer_armed_ = false;
            try_advance();
          },
          /*shard=*/self_);
    }
    return;
  }

  // Leader-awareness (Bullshark): leaving an even round, give the anchor a
  // chance to be among our parents so our header is a vote for it.
  if (target % 2 == 0) {
    const ValidatorIndex leader = policy_->leader(target);
    if (!dag_->contains(target, leader)) {
      const SimTime deadline =
          quorum_reached_at_.at(target) + config_.leader_timeout;
      if (sim_.now() < deadline) {
        if (leader_wait_round_ != target) {
          leader_wait_round_ = target;
          const std::uint64_t inc = incarnation_;
          sim_.schedule_at(
              deadline,
              [this, target, inc]() {
                if (crashed_ || inc != incarnation_) return;
                if (leader_wait_round_ == target) {
                  leader_wait_round_.reset();
                  ++stats_.leader_timeouts;
                  try_advance();
                }
              },
              /*shard=*/self_);
        }
        return;
      }
    } else if (leader_wait_round_ == target) {
      leader_wait_round_.reset();
    }
  }
  propose(next);
}

// ------------------------------------------------------------------- voting

void Validator::handle_header(ValidatorIndex from,
                              const dag::HeaderPtr& header) {
  if (header->author != from) return;  // headers come from their author
  if (!header->verify_content(committee_)) return;
  maybe_vote(from, header);
}

void Validator::maybe_vote(ValidatorIndex from, const dag::HeaderPtr& header) {
  if (config_.behavior == Behavior::VoteWithholder) return;
  if (directives_ != nullptr &&
      directives_->withhold_votes_for == header->author) {
    ++stats_.votes_withheld;
    return;
  }

  const std::pair<ValidatorIndex, Round> slot{header->author, header->round};
  if (auto prior = voted_table().get(slot)) {
    if (*prior != header->digest) {
      // Equivocation attempt: we already countersigned a different header
      // for this (author, round). Refuse.
      ++stats_.equivocations_observed;
      return;
    }
    // Duplicate delivery of a header we already voted for: re-send the vote
    // (idempotent; helps an author that lost our first vote).
  } else {
    // Durable write *before* the vote leaves the node — after a crash and
    // recovery we must never countersign a conflicting header.
    voted_table().put(slot, header->digest);
    charge_cpu(config_.cost_store_write + config_.cost_sign);
  }

  auto msg = std::make_shared<VoteMsg>();
  msg->vote = dag::Vote::make(*header, self_, keypair_);
  ++stats_.votes_sent;
  network_.send(self_, from, std::move(msg));
}

void Validator::handle_vote(const dag::Vote& vote) {
  auto it = our_pending_.find(vote.header_digest);
  if (it == our_pending_.end()) return;
  PendingHeader& pending = it->second;
  if (pending.certified) return;
  if (vote.voter >= committee_.size()) return;
  if (!vote.verify(committee_)) return;
  if (!pending.voters.insert(vote.voter).second) return;
  pending.voter_stake += committee_.stake_of(vote.voter);
  if (pending.voter_stake < committee_.quorum_threshold()) return;

  pending.certified = true;
  std::vector<ValidatorIndex> signers(pending.voters.begin(),
                                      pending.voters.end());
  dag::CertPtr cert =
      dag::Certificate::make(pending.header, std::move(signers));
  ++stats_.certs_formed;
  charge_cpu(config_.cost_store_write);

  auto msg = std::make_shared<CertMsg>();
  msg->cert = cert;
  network_.multicast(self_, std::move(msg));
  ingest_cert(cert, kInvalidValidator);
}

// ----------------------------------------------------------- cert ingestion

void Validator::handle_cert(ValidatorIndex from, const dag::CertPtr& cert) {
  ++stats_.certs_received;
  if (!cert->verify(committee_)) return;
  ingest_cert(cert, from);
}

void Validator::ingest_cert(const dag::CertPtr& cert, ValidatorIndex source) {
  if (cert->round() < dag_->gc_floor()) return;  // ancient; pruned history
  if (buffered_.count(cert->digest())) return;

  // Single admission pass: parents are resolved exactly once — either the
  // certificate goes straight into the DAG or the unresolved digests come
  // back for the fetch path.
  missing_scratch_.clear();
  const auto outcome = dag_->try_insert(cert, &missing_scratch_);
  if (outcome == dag::Dag::InsertOutcome::Inserted) {
    insert_ready_cert(cert, /*inserted=*/true);
    return;
  }
  if (outcome == dag::Dag::InsertOutcome::Conflict) {
    // A *certified* equivocation: a second certificate for an occupied
    // (round, author) slot with a different digest. Vote uniqueness makes
    // this impossible while < n/3 stake is Byzantine, so the committer's
    // conflicting_certs counter doubles as a safety gauge (must stay 0).
    ++stats_.equivocations_observed;
    committer_->note_conflicting_cert();
    return;
  }
  if (outcome != dag::Dag::InsertOutcome::Missing) return;  // duplicate

  maybe_request_state_sync(*cert, source);
  const std::vector<Digest>& missing = missing_scratch_;
  buffered_.emplace(cert->digest(), cert);
  for (const Digest& d : missing)
    waiting_children_[d].push_back(cert->digest());
  missing_count_[cert->digest()] = missing.size();
  // Ask the sender (or a deterministic peer when locally sourced). Fetches
  // are retried after fetch_retry_delay — responses can be truncated
  // during deep catch-up.
  std::vector<Digest> to_fetch;
  const SimTime now = sim_.now();
  for (const Digest& d : missing) {
    if (buffered_.count(d)) continue;  // already on its way via its parents
    auto [it, inserted] =
        outstanding_fetches_.try_emplace(d, now + config_.fetch_retry_delay);
    if (!inserted) {
      if (it->second > now) continue;  // a fetch is still in flight
      it->second = now + config_.fetch_retry_delay;
    }
    to_fetch.push_back(d);
  }
  if (!to_fetch.empty()) {
    ValidatorIndex target = source;
    if (target == kInvalidValidator || target == self_)
      target = cert->author() != self_ ? cert->author()
                                       : (self_ + 1) % committee_.size();
    request_fetch(target, std::move(to_fetch));
  }
  arm_fetch_retry_timer();
}

void Validator::insert_ready_cert(const dag::CertPtr& cert, bool inserted) {
  // Iterative flush: inserting one certificate may ready buffered children.
  // The scratch vector is a member so the steady state allocates nothing;
  // the loop never nests another ingest (sends are asynchronous events).
  std::vector<dag::CertPtr>& ready = ready_scratch_;
  ready.clear();
  ready.push_back(cert);
  bool first = true;
  while (!ready.empty()) {
    dag::CertPtr next = std::move(ready.back());
    ready.pop_back();
    const bool in_dag = (first && inserted) || dag_->insert(next);
    first = false;
    if (!in_dag) continue;
    outstanding_fetches_.erase(next->digest());

    if (!replaying_) {
      cert_table().put({next->round(), next->author()}, next);
      charge_cpu(config_.cost_store_write);
    }

    // Round bookkeeping for the proposer.
    const Round r = next->round();
    round_stake_[r] += committee_.stake_of(next->author());
    if (round_stake_[r] >= committee_.quorum_threshold() &&
        !quorum_reached_at_.count(r)) {
      quorum_reached_at_[r] = sim_.now();
      if (!have_quorum_anywhere_ || r > max_quorum_round_) {
        max_quorum_round_ = r;
        have_quorum_anywhere_ = true;
      }
    }

    committer_->on_cert_inserted(next);

    // Release buffered children waiting on this digest.
    auto wit = waiting_children_.find(next->digest());
    if (wit != waiting_children_.end()) {
      for (const Digest& child_digest : wit->second) {
        auto mit = missing_count_.find(child_digest);
        if (mit == missing_count_.end()) continue;
        if (--mit->second == 0) {
          auto bit = buffered_.find(child_digest);
          HH_ASSERT(bit != buffered_.end());
          ready.push_back(bit->second);
          buffered_.erase(bit);
          missing_count_.erase(mit);
        }
      }
      waiting_children_.erase(wit);
    }
  }
  try_advance();
}

void Validator::arm_fetch_retry_timer() {
  if (fetch_timer_armed_) return;
  fetch_timer_armed_ = true;
  const std::uint64_t inc = incarnation_;
  sim_.schedule_after(
      config_.fetch_retry_delay,
      [this, inc]() {
        if (crashed_ || inc != incarnation_) return;
        fetch_timer_armed_ = false;
        retry_fetches();
      },
      /*shard=*/self_);
}

void Validator::retry_fetches() {
  if (buffered_.empty()) return;
  // Gather the lowest missing ancestry across all buffered certificates:
  // (child round - 1, digest) pairs, deduplicated, lowest rounds first so
  // truncated responses still let us make bottom-up progress.
  const SimTime now = sim_.now();
  std::vector<std::pair<Round, Digest>> wanted;
  retry_seen_.begin();  // epoch-stamped reuse; no per-call set allocation
  for (const auto& [digest, cert] : buffered_) {
    for (const Digest& d : dag_->missing_parents(*cert)) {
      if (buffered_.count(d)) continue;  // will arrive via its own ancestry
      if (!retry_seen_.insert(d)) continue;
      auto it = outstanding_fetches_.find(d);
      if (it != outstanding_fetches_.end() && it->second > now) continue;
      wanted.emplace_back(cert->round() - 1, d);
    }
  }
  if (!wanted.empty()) {
    std::sort(wanted.begin(), wanted.end());
    constexpr std::size_t kMaxRetryDigests = 64;
    if (wanted.size() > kMaxRetryDigests) wanted.resize(kMaxRetryDigests);
    std::vector<Digest> digests;
    digests.reserve(wanted.size());
    for (auto& [round, d] : wanted) {
      digests.push_back(d);
      outstanding_fetches_[d] = now + config_.fetch_retry_delay;
    }
    // Rotate targets so one unhelpful peer cannot stall catch-up.
    ValidatorIndex target =
        static_cast<ValidatorIndex>((self_ + 1 + fetch_peer_rotation_++) %
                                    committee_.size());
    if (target == self_) target = (target + 1) % committee_.size();
    request_fetch(target, std::move(digests));
  }
  arm_fetch_retry_timer();
}

void Validator::request_fetch(ValidatorIndex target,
                              std::vector<Digest> missing) {
  if (target == self_ || target >= committee_.size()) return;
  auto msg = std::make_shared<FetchReqMsg>();
  msg->digests = std::move(missing);
  msg->have_up_to_round =
      static_cast<Round>(
          std::max<std::int64_t>(0, committer_->last_anchor_round()));
  ++stats_.fetches_sent;
  HH_DEBUG("FETCHREQ v" << self_ << " -> v" << target
                        << " n=" << msg->digests.size()
                        << " have_up_to=" << msg->have_up_to_round);
  network_.send(self_, target, std::move(msg));
}

void Validator::handle_fetch_req(ValidatorIndex from, const FetchReqMsg& req) {
  // Requested certificates plus their causal history above the requester's
  // floor, sorted ascending. When the history exceeds the response cap, keep
  // the LOWEST rounds: the requester can only insert bottom-up, so shipping
  // the top of the range would make no progress (it re-fetches the rest).
  // The closure is a handle BFS inside the DAG (epoch-stamped visited marks
  // in the arena slots — no per-call visited set).
  std::vector<dag::CertPtr> collected =
      dag_->collect_above(req.digests, req.have_up_to_round);
  std::sort(collected.begin(), collected.end(),
            [](const dag::CertPtr& a, const dag::CertPtr& b) {
              if (a->round() != b->round()) return a->round() < b->round();
              return a->author() < b->author();
            });
  if (collected.size() > config_.max_fetch_response_certs)
    collected.resize(config_.max_fetch_response_certs);
  auto resp = std::make_shared<FetchRespMsg>(std::move(collected));
  HH_DEBUG("FETCHRESP v"
           << self_ << " -> v" << from << " n=" << resp->certs.size()
           << (resp->certs.empty()
                   ? ""
                   : (" lo=" + std::to_string(resp->certs.front()->round()) +
                      " hi=" + std::to_string(resp->certs.back()->round()))));
  if (!resp->certs.empty()) network_.send(self_, from, std::move(resp));
}

void Validator::handle_fetch_resp(ValidatorIndex from,
                                  const FetchRespMsg& resp) {
  // Warm the verification memos in lockstep lanes first; the per-cert
  // verify() below is then a memo hit, preserving the drop-rest semantics.
  dag::batch_verify(resp.certs, committee_);
  for (const auto& cert : resp.certs) {
    if (!cert->verify(committee_)) return;  // malformed response; drop rest
    ingest_cert(cert, from);
  }
}

// --------------------------------------------------------------- state sync

void Validator::maybe_request_state_sync(const dag::Certificate& evidence,
                                         ValidatorIndex source) {
  if (!config_.gc_enabled) return;
  // Evidence of being beyond the horizon: the network produces certificates
  // more than a GC window ahead of anything we can connect to.
  const Round frontier =
      dag_->max_round() ? *dag_->max_round() : dag_->gc_floor();
  if (evidence.round() <= frontier + config_.gc_depth) return;
  if (sim_.now() < state_sync_retry_at_) return;  // request in flight
  state_sync_retry_at_ = sim_.now() + config_.leader_timeout;

  ValidatorIndex target = source;
  if (target == kInvalidValidator || target == self_)
    target = evidence.author() != self_
                 ? evidence.author()
                 : (self_ + 1) % committee_.size();
  auto msg = std::make_shared<StateSyncReqMsg>();
  msg->have_up_to_round = frontier;
  ++stats_.state_syncs_requested;
  HH_INFO("validator " << self_ << " requests state sync from v" << target
                       << " (frontier " << frontier << ", evidence round "
                       << evidence.round() << ")");
  network_.send(self_, target, std::move(msg));
}

void Validator::handle_state_sync_req(ValidatorIndex from,
                                      const StateSyncReqMsg& req) {
  (void)req;
  const auto max_round = dag_->max_round();
  if (!max_round) return;
  // Arena slabs are author-indexed, so the per-round author order the wire
  // format wants falls out of the slab walk directly.
  std::vector<dag::CertPtr> certs;
  for (Round r = dag_->gc_floor(); r <= *max_round; ++r)
    dag_->for_each_round_cert(
        r, [&](const dag::CertPtr& c) { certs.push_back(c); });
  auto resp = std::make_shared<StateSyncRespMsg>(
      dag_->gc_floor(), std::move(certs),
      committer_->snapshot(dag_->gc_floor()),
      policy_->snapshot());
  network_.send(self_, from, std::move(resp));
}

void Validator::handle_state_sync_resp(ValidatorIndex from,
                                       const StateSyncRespMsg& resp) {
  (void)from;
  // Only meaningful if the snapshot is actually ahead of us. An empty
  // policy snapshot is legitimate: stateless schedules (round-robin,
  // static) carry no epochs, and a fresh policy equals the installed one —
  // refusing it would strand those policies behind the GC horizon forever.
  const Round frontier =
      dag_->max_round() ? *dag_->max_round() : dag_->gc_floor();
  if (resp.gc_floor <= frontier) return;

  HH_INFO("validator " << self_ << " installing state sync snapshot: floor "
                       << resp.gc_floor << ", " << resp.certs.size()
                       << " certs, commit index "
                       << resp.committer.commit_index);

  // Rebuild consensus state from the snapshot. This is a checkpoint install:
  // the skipped part of the ordered log is NOT re-delivered (real
  // deployments recover application state from a checkpoint store).
  policy_ = policy_factory_(committee_);
  policy_->install_snapshot(resp.policy);
  dag_ = std::make_unique<dag::Dag>(committee_, config_.index);
  dag_->prune_below(resp.gc_floor);
  committer_ = std::make_unique<consensus::BullsharkCommitter>(
      committee_, *dag_, *policy_,
      [this](const consensus::CommittedSubDag& sd) { on_subdag_committed(sd); },
      config_.commit_rule, [this] { return sim_.now(); },
      config_.trigger_scan);
  committer_->install_snapshot(resp.committer);

  buffered_.clear();
  missing_count_.clear();
  waiting_children_.clear();
  outstanding_fetches_.clear();
  round_stake_.clear();
  quorum_reached_at_.clear();
  max_quorum_round_ = 0;
  have_quorum_anywhere_ = false;
  leader_wait_round_.reset();

  // Persist the horizon so a later crash recovers from the synced state: the
  // certificate table is rebuilt from the snapshot (the pre-sync prefix is
  // unreachable below the floor anyway).
  // NOTE: the voted table is intentionally kept — vote uniqueness must
  // survive state sync exactly as it survives restarts.
  cert_table().clear();
  meta_table().put("sync_floor", resp.gc_floor);
  policy_snapshot_table().put("snap", resp.policy);
  committer_snapshot_table().put("snap", resp.committer);

  replaying_ = true;  // suppress re-reporting of commits during install
  // Snapshots carry whole GC windows of certificates; batch-hash their
  // header preimages (8 lanes per dispatch) before the replay loop's
  // per-cert verify() memo hits.
  dag::batch_verify(resp.certs, committee_);
  for (const auto& cert : resp.certs) {
    if (!cert->verify(committee_)) continue;
    if (!dag_->parents_present(*cert)) continue;
    if (dag_->insert(cert)) {
      cert_table().put({cert->round(), cert->author()}, cert);
      round_stake_[cert->round()] += committee_.stake_of(cert->author());
      if (round_stake_[cert->round()] >= committee_.quorum_threshold()) {
        if (!quorum_reached_at_.count(cert->round()))
          quorum_reached_at_[cert->round()] = sim_.now();
        if (!have_quorum_anywhere_ || cert->round() > max_quorum_round_) {
          max_quorum_round_ = cert->round();
          have_quorum_anywhere_ = true;
        }
      }
    }
  }
  committer_->process();
  replaying_ = false;
  ++stats_.state_syncs_completed;
  state_sync_retry_at_ = 0;
  try_advance();
}

// -------------------------------------------------------------------- commit

void Validator::on_subdag_committed(const consensus::CommittedSubDag& subdag) {
  if (!replaying_) {
    // Execution cost of the committed transactions (shared-counter workload).
    std::size_t txs = 0;
    for (const auto& v : subdag.vertices)
      if (v->header->payload) txs += v->header->payload->txs.size();
    stats_.txs_executed += txs;
    charge_cpu(static_cast<SimTime>(txs) * config_.cost_per_tx_execute);
    if (on_commit_) {
      if (sim_.staging()) {
        // The commit callback feeds the harness-global metrics collector:
        // inside a sharded wave it is deferred so commit streams from
        // different shards interleave in exact (time, seq) order.
        sim_.defer([this, self = self_, sd = subdag] { on_commit_(self, sd); });
      } else {
        on_commit_(self_, subdag);
      }
    }
  }
  run_garbage_collection();
}

void Validator::run_garbage_collection() {
  if (!config_.gc_enabled) return;
  const std::int64_t last = committer_->last_anchor_round();
  if (last <= static_cast<std::int64_t>(config_.gc_depth)) return;
  const Round floor = static_cast<Round>(last) - config_.gc_depth;
  if (floor <= dag_->gc_floor()) return;
  dag_->prune_below(floor);
  committer_->prune_ordered_below(floor);
  for (auto it = round_stake_.begin(); it != round_stake_.end();)
    it = it->first < floor ? round_stake_.erase(it) : std::next(it);
  for (auto it = quorum_reached_at_.begin(); it != quorum_reached_at_.end();)
    it = it->first < floor ? quorum_reached_at_.erase(it) : std::next(it);
}

// ----------------------------------------------------------- checkpointing

namespace {

/// Sorted-key walk over an unordered map: the serialization must not depend
/// on hash-table iteration order.
template <typename Map, typename Fn>
void for_each_sorted(const Map& map, Fn&& fn) {
  std::vector<const typename Map::value_type*> entries;
  entries.reserve(map.size());
  for (const auto& kv : map) entries.push_back(&kv);
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  for (const auto* kv : entries) fn(kv->first, kv->second);
}

void write_policy_snapshot(ByteWriter& w, const core::PolicySnapshot& snap) {
  w.u64(snap.epochs.size());
  for (const core::PolicySnapshot::Epoch& e : snap.epochs) {
    w.u64(e.initial_round);
    w.u64(e.bad.size());
    for (const ValidatorIndex v : e.bad) w.u32(v);
    w.u64(e.good.size());
    for (const ValidatorIndex v : e.good) w.u32(v);
  }
  w.u64(snap.scores.size());
  for (const std::int64_t s : snap.scores) w.i64(s);
  w.u64(snap.commits_in_epoch);
}

void write_committer_snapshot(ByteWriter& w,
                              const consensus::CommitterSnapshot& snap,
                              const consensus::CommitterStats& stats) {
  w.i64(snap.last_anchor_round);
  w.u64(snap.commit_index);
  w.u64(snap.ordered_by_round.size());
  for (const auto& [round, digests] : snap.ordered_by_round) {
    w.u64(round);
    w.u64(digests.size());
    for (const Digest& d : digests) w.bytes(d.bytes());
  }
  w.u64(stats.committed_anchors);
  w.u64(stats.skipped_anchors);
  w.u64(stats.ordered_vertices);
  w.u64(stats.schedule_changes);
  w.u64(stats.conflicting_certs);
}

}  // namespace

void Validator::serialize_state(ByteWriter& w) const {
  w.u32(self_);
  w.u8(crashed_ ? 1 : 0);
  w.u8(started_ ? 1 : 0);
  w.u64(incarnation_);
  // Stats counters (all deterministic).
  w.u64(stats_.headers_proposed);
  w.u64(stats_.votes_sent);
  w.u64(stats_.certs_formed);
  w.u64(stats_.certs_received);
  w.u64(stats_.leader_timeouts);
  w.u64(stats_.fetches_sent);
  w.u64(stats_.equivocations_observed);
  w.u64(stats_.equivocations_sent);
  w.u64(stats_.votes_withheld);
  w.u64(stats_.txs_executed);
  w.u64(stats_.restarts);
  w.u64(stats_.state_syncs_requested);
  w.u64(stats_.state_syncs_completed);
  // Durable tables survive crashes; serialize them unconditionally, in key
  // order (the Table::for_each contract).
  cert_table_->for_each([&](const std::pair<Round, ValidatorIndex>& key,
                            const dag::CertPtr& cert) {
    w.u64(key.first);
    w.u32(key.second);
    w.bytes(cert->digest().bytes());
  });
  voted_table_->for_each(
      [&](const std::pair<ValidatorIndex, Round>& key, const Digest& digest) {
        w.u32(key.first);
        w.u64(key.second);
        w.bytes(digest.bytes());
      });
  meta_table_->for_each([&](const std::string& key, const std::uint64_t& v) {
    w.str(key);
    w.u64(v);
  });
  // A crashed node's volatile state is conceptually gone until restart():
  // it must not contribute bytes (the replayed twin would match anyway, but
  // the semantics of the snapshot are "what the node knows").
  if (crashed_ || !started_) return;
  // Protocol positioning.
  w.u64(last_proposed_round_);
  w.u8(proposed_anything_ ? 1 : 0);
  w.i64(last_propose_time_);
  w.i64(cpu_free_at_);
  w.u8(round_delay_timer_armed_ ? 1 : 0);
  w.u8(fetch_timer_armed_ ? 1 : 0);
  w.u32(fetch_peer_rotation_);
  w.i64(state_sync_retry_at_);
  w.u64(max_quorum_round_);
  w.u8(have_quorum_anywhere_ ? 1 : 0);
  w.i64(leader_wait_round_ ? static_cast<std::int64_t>(*leader_wait_round_)
                           : -1);
  // Round bookkeeping.
  for_each_sorted(round_stake_, [&](Round r, Stake s) {
    w.u64(r);
    w.u64(s);
  });
  for_each_sorted(quorum_reached_at_, [&](Round r, SimTime t) {
    w.u64(r);
    w.i64(t);
  });
  // Mempool (submission order).
  w.u64(mempool_.size());
  for (const dag::Transaction& tx : mempool_) {
    w.u64(tx.id);
    w.i64(tx.submit_time);
  }
  // Vote collection for our own headers.
  w.u64(our_pending_.size());
  for_each_sorted(our_pending_, [&](const Digest& d, const PendingHeader& p) {
    w.bytes(d.bytes());
    w.u64(p.voter_stake);
    w.u8(p.certified ? 1 : 0);
    std::vector<ValidatorIndex> voters(p.voters.begin(), p.voters.end());
    std::sort(voters.begin(), voters.end());
    w.u64(voters.size());
    for (const ValidatorIndex v : voters) w.u32(v);
  });
  // Synchronizer state: buffered certificates and outstanding fetches.
  w.u64(buffered_.size());
  for_each_sorted(buffered_, [&](const Digest& d, const dag::CertPtr&) {
    w.bytes(d.bytes());
  });
  for_each_sorted(outstanding_fetches_, [&](const Digest& d, SimTime at) {
    w.bytes(d.bytes());
    w.i64(at);
  });
  // Leader schedule, committer positioning and the DAG's logical content.
  write_policy_snapshot(w, policy_->snapshot());
  write_committer_snapshot(w, committer_->snapshot(dag_->gc_floor()),
                           committer_->stats());
  dag_->serialize_content(w);
}

}  // namespace hammerhead::node

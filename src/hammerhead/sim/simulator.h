// Deterministic discrete-event simulator — batched slab engine with
// optional sharded intra-run parallelism.
//
// All protocol activity (message delivery, timeouts, CPU work completion,
// client arrivals) is an event ordered by (time, sequence-number). The
// sequence number makes simultaneous events fire in scheduling order, so a
// seeded run is bit-for-bit reproducible — the property tests rely on this
// to replay adversarial executions.
//
// Engine layout (the hot path runs tens of thousands of times per simulated
// round, so per-event bookkeeping is allocation-free in steady state):
//
//  * Event slots live in a pooled slab and are generation-stamped: an event
//    id is (generation << 32 | slot). cancel() bumps the slot generation and
//    frees the slot — O(1), no hash sets; stale references left in the queue
//    structures are skipped (and reaped) when encountered. A compaction
//    sweep keeps the number of stale references bounded by the number of
//    live events, so schedule/cancel storms run in O(1) memory.
//  * Two-tier time wheel: events within kWheelTicks microseconds of the
//    drain cursor go to exact per-microsecond buckets (O(1) insert, found
//    again via an occupancy bitmap); events farther out go to a min-heap of
//    24-byte POD refs. No migration between tiers is needed for
//    correctness: the next batch is the minimum of the next occupied bucket
//    and the heap top.
//  * Draining pops ALL events of the next timestamp as one batch, sorted by
//    seq — the (time, seq) total order is exactly the legacy single-heap
//    order, which the determinism/property tests replay.
//  * Two event kinds: an arbitrary std::function action (timers; may
//    allocate to store captures) and a raw (function-pointer, context, arg)
//    event — the allocation-free path the network's message fabric uses.
//    reserve_seq()/schedule_raw_keyed() let the network pre-assign order
//    keys for multicast fan-out so one live timer can stand in for n
//    per-recipient heap entries without changing the delivery order.
//
// Sharded execution (Simulator(seed, workers) with workers > 1): every
// event carries an owner shard (validator index / fabric lane, or
// kSerialShard for events that may touch global state). A same-timestamp
// batch is split into runs of shard-owned events; each run is partitioned
// by shard and executed on a persistent worker pool. While a worker runs
// an event, every engine-visible side effect — schedule, cancel, network
// send, metric callback — is *staged* into a per-event effect buffer
// instead of mutating the engine; after the run joins, the buffers are
// replayed on the driver thread in exact (time, seq) order. Sequence
// numbers, RNG draws and arrival keys are therefore assigned in the
// identical order as a serial drain, so seeded runs are bit-identical at
// any worker count (see ARCHITECTURE.md, "Sharded execution").
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "hammerhead/common/assert.h"
#include "hammerhead/common/epoch.h"
#include "hammerhead/common/rng.h"
#include "hammerhead/common/serde.h"
#include "hammerhead/common/types.h"

namespace hammerhead::sim {

/// Owner shard of an event: events of one shard execute in (time, seq)
/// order on one worker and may only touch that shard's state (one
/// validator, one fabric lane). kSerialShard events may touch anything and
/// act as barriers inside a batch.
using ShardId = std::uint32_t;
inline constexpr ShardId kSerialShard = 0xffffffffu;

/// Engine-internal instrumentation, exported as monitor gauges and bench
/// JSON columns by the harness.
struct SimStats {
  std::uint64_t executed = 0;         // events fired
  std::uint64_t raw_events = 0;       // fired via the raw (pooled) path
  std::uint64_t callback_events = 0;  // fired via std::function actions
  /// Heap allocations performed by the engine's own structures (slab/bucket/
  /// heap/batch capacity growth). Zero per event in steady state; the
  /// std::function storage of callback events is accounted by
  /// callback_events, not here.
  std::uint64_t engine_allocs = 0;
  std::uint64_t batches = 0;  // distinct timestamps drained
  /// Sharded-execution gauges: batch segments executed on the worker pool,
  /// events executed inside them, and effects staged + replayed.
  std::uint64_t parallel_segments = 0;
  std::uint64_t parallel_events = 0;
  std::uint64_t staged_ops = 0;
};

class Simulator {
 public:
  using Action = std::function<void()>;
  /// Raw event: no captures, no allocation. `arg` is caller-owned context.
  using RawFn = void (*)(void* ctx, std::uint64_t arg);
  /// Staged client effect (network fabric): replayed on the driver thread
  /// in (time, seq) order. `pin` keeps a payload (message) alive.
  using ClientFn = void (*)(void* ctx, std::uint64_t a, std::uint64_t b,
                            const std::shared_ptr<const void>& pin);

  /// `workers` > 1 enables sharded batch execution on that many threads
  /// (including the driver); 1 is the exact serial engine.
  explicit Simulator(std::uint64_t seed, std::size_t workers = 1);
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }
  Rng& rng() {
    // The engine RNG is global state: it must only be drawn while effects
    // are applied in (time, seq) order, never from a worker mid-wave.
    HH_ASSERT_MSG(tls_staging_ == nullptr,
                  "Simulator::rng() drawn inside a sharded wave");
    return rng_;
  }
  std::size_t workers() const { return workers_; }

  /// Schedule `action` to run `delay` microseconds from now (delay >= 0).
  /// Returns an id usable with cancel(). Ids returned while staging (inside
  /// a sharded wave) are kStagedEventId and cannot be cancelled.
  std::uint64_t schedule_after(SimTime delay, Action action,
                               ShardId shard = kSerialShard) {
    HH_ASSERT_MSG(delay >= 0, "negative delay " << delay);
    return schedule_at(now_ + delay, std::move(action), shard);
  }

  /// Schedule at an absolute simulated time (>= now()).
  std::uint64_t schedule_at(SimTime when, Action action,
                            ShardId shard = kSerialShard);

  /// Allocation-free scheduling: `fn(ctx, arg)` fires at `when`.
  std::uint64_t schedule_raw_at(SimTime when, RawFn fn, void* ctx,
                                std::uint64_t arg,
                                ShardId shard = kSerialShard);

  /// Reserve the next (time, seq) order key without scheduling anything.
  /// Pair with schedule_raw_keyed(): the network reserves one seq per
  /// multicast recipient at send time, then keeps a single live event that
  /// re-keys itself through the reserved sequence — the delivery order is
  /// bit-identical to scheduling n independent events at send time. Only
  /// valid while not staging (the fabric reserves during effect replay).
  std::uint64_t reserve_seq() {
    HH_ASSERT_MSG(tls_staging_ == nullptr,
                  "reserve_seq() inside a sharded wave");
    return next_seq_++;
  }

  /// Schedule a raw event under a previously reserved order key. `seq` must
  /// come from reserve_seq() (i.e. be below the current counter); events at
  /// the executing timestamp must carry a seq greater than every event the
  /// drain already popped.
  std::uint64_t schedule_raw_keyed(SimTime when, std::uint64_t seq, RawFn fn,
                                   void* ctx, std::uint64_t arg,
                                   ShardId shard = kSerialShard);

  /// Cancel a pending event. Cancelling an already-fired, already-cancelled
  /// or unknown id is a true no-op (timer races are normal in the protocol
  /// layer) — the slot generation check rejects stale ids without retaining
  /// any state, so repeated stale cancels cannot grow memory.
  void cancel(std::uint64_t id);

  /// True while the calling thread executes an event inside a sharded wave:
  /// engine-visible side effects are being staged for ordered replay.
  bool staging() const { return tls_staging_ != nullptr; }

  /// Run `fn` now — unless staging, in which case it is buffered and
  /// replayed on the driver thread in this event's (time, seq) position.
  /// The escape hatch for cross-shard side effects (harness metrics).
  void defer(std::function<void()> fn);

  /// Stage a client effect for ordered replay. Returns false when not
  /// staging — the caller performs the effect directly instead. The hot
  /// allocation-free staging path of the network fabric.
  bool stage_client(ClientFn fn, void* ctx, std::uint64_t a, std::uint64_t b,
                    std::shared_ptr<const void> pin = nullptr);

  /// Id returned by schedule calls made while staging (not cancellable —
  /// no caller in the tree cancels a timer it armed inside a handler).
  static constexpr std::uint64_t kStagedEventId = ~0ull;

  /// Run until the queue drains or simulated time would exceed `deadline`,
  /// whichever is first. Time ends at min(deadline, last event time).
  /// Returns the number of events executed.
  std::uint64_t run_until(SimTime deadline);

  /// Run until the event queue is completely empty.
  std::uint64_t run_to_completion();

  /// Execute exactly one pending event scheduled at or before `deadline`.
  /// Returns false if there is none. Always serial-exact (no staging),
  /// whatever the worker count.
  bool step(SimTime deadline = kSimTimeNever);

  /// The engine's epoch-reclamation domain (common/epoch.h). The sharded
  /// drain advances it at every batch boundary — the natural quiescent
  /// point: all workers are parked at the wave barrier — flushing deferred
  /// memo publications, firing quiescent hooks (node layers register
  /// snapshot publication here, e.g. the DAG digest resolver) and
  /// reclaiming retired snapshots after grace. Serial runs never advance
  /// it: with no concurrent readers there is nothing to publish or
  /// reclaim, and memos publish immediately (epoch::current() is null).
  epoch::Domain& epoch_domain() { return epoch_; }
  const epoch::Domain& epoch_domain() const { return epoch_; }

  /// Checkpoint support: serialize the pending-event *schedule* — every live
  /// (time, seq, shard, kind) tuple across the wheel, the far heap and the
  /// partially drained batch — in (time, seq) order, plus the engine scalars
  /// (now, seq counter, executed count, RNG stream position). Event payloads
  /// (std::function captures, raw fn/ctx pointers) are process-local and
  /// cannot round-trip a file; the checkpoint subsystem restores them by
  /// deterministic replay and uses this encoding to verify the replayed
  /// engine reached a byte-identical queue shape (docs/checkpoint.md). Only
  /// valid between batches (never while staging or mid-wave).
  void serialize_state(ByteWriter& w) const;

  /// Monotonic (time, seq) order-key counter (checkpoint fingerprint).
  std::uint64_t seq_counter() const { return next_seq_; }

  bool empty() const { return live_events_ == 0; }
  std::size_t pending_events() const { return live_events_; }
  std::uint64_t executed_events() const { return stats_.executed; }
  /// Cancelled events whose queue references have not been reaped yet
  /// (bounded by pending_events() + compaction threshold; exposed for the
  /// cancel-leak regression tests).
  std::size_t cancelled_pending() const { return cancelled_pending_; }
  /// Slots currently allocated in the slab (high-water mark of concurrently
  /// pending events; the cancel-storm test asserts this stays O(live)).
  std::size_t slab_slots() const { return slots_.size(); }
  std::uint64_t engine_allocs() const { return stats_.engine_allocs; }
  const SimStats& stats() const { return stats_; }

 private:
  // Near-tier wheel geometry: exact 1-microsecond buckets covering
  // [cursor_time_, cursor_time_ + kWheelTicks). 2^13 us (~8.2 ms) keeps the
  // whole bucket array (~200 KB) cache-resident, which empirically beats
  // wider horizons: CPU completions, egress spacing, fanout re-keys and
  // timer cascades (microseconds-to-milliseconds apart) insert at O(1) into
  // hot memory, while WAN first-arrivals and protocol timers ride the far
  // heap, which stays small (in-flight fanouts, not per-recipient events).
  static constexpr std::uint32_t kWheelBits = 13;
  static constexpr std::uint32_t kWheelTicks = 1u << kWheelBits;  // ~8.2 ms
  static constexpr std::uint32_t kWheelMask = kWheelTicks - 1;
  /// Below this many events a segment executes serially: the pool handshake
  /// costs more than the work it would spread.
  static constexpr std::size_t kMinParallelSegment = 4;

  struct Slot {
    Action action;          // callback events only; empty otherwise
    RawFn raw = nullptr;    // raw events only
    void* ctx = nullptr;
    std::uint64_t arg = 0;
    std::uint32_t gen = 0;
    ShardId shard = kSerialShard;
    bool live = false;
    /// Set while the slot's event executes inside the current wave: a
    /// staged cancel reaching it would mean a handler cancelled a
    /// concurrently executing event — impossible to replay serially, so it
    /// asserts instead of silently diverging.
    bool executing = false;
  };

  /// Queue reference: POD, 24 bytes. Stale when slots_[slot].gen != gen.
  struct Ref {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  /// Per-event staged side effects, replayed in (time, seq) order after the
  /// wave joins. POD ops in one vector; captures (actions, closures, pinned
  /// payloads) in side vectors referenced by index. Pooled across waves.
  struct EffectBuffer {
    struct Op {
      enum class Kind : std::uint8_t {
        ScheduleFn,
        ScheduleRaw,
        Cancel,
        Closure,
        Client,
      };
      Kind kind;
      ShardId shard;
      SimTime when;
      std::uint64_t seq;  // keyed raw schedules; kStagedEventId = fresh
      RawFn raw;
      ClientFn client;
      void* ctx;
      std::uint64_t a;
      std::uint64_t b;
      std::uint32_t aux;  // index into actions_/closures_/pins_
    };
    std::vector<Op> ops;
    std::vector<Action> actions;
    std::vector<std::function<void()>> closures;
    std::vector<std::shared_ptr<const void>> pins;
    void clear() {
      ops.clear();
      actions.clear();
      closures.clear();
      pins.clear();
    }
  };

  /// One shard's slice of the current segment: indices into par_refs_, in
  /// seq order. Executed by exactly one thread per wave; `stats` and `error`
  /// are written by that thread and read by the driver after the join.
  struct Chain {
    std::vector<std::uint32_t> events;
    std::uint64_t raw_fired = 0;
    std::uint64_t fn_fired = 0;
    std::exception_ptr error;
  };

  /// Min-heap order on (time, seq) for the far tier ("a sorts after b").
  static bool heap_later(const Ref& a, const Ref& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  bool stale(const Ref& r) const {
    const Slot& s = slots_[r.slot];
    return !s.live || s.gen != r.gen;
  }
  void enqueue(SimTime when, std::uint64_t seq, std::uint32_t slot);
  /// Find (and form) the next same-timestamp batch at or before `deadline`.
  bool form_batch(SimTime deadline);
  /// Earliest occupied bucket tick in the wheel window, or kSimTimeNever.
  SimTime next_bucket_tick();
  void fire(const Ref& r);
  /// Drop stale refs from every structure once they outnumber live events.
  void maybe_compact();

  // --- sharded drain ---------------------------------------------------
  /// Drain the already-formed current batch, splitting shard-owned runs
  /// onto the worker pool. Returns events executed.
  std::uint64_t drain_batch_sharded();
  /// Execute par_refs_ (all shard-owned, same timestamp) as one wave:
  /// partition by shard, run on the pool, replay staged effects in order.
  void run_wave();
  /// Execute one event with effects staged into `buf` (worker context).
  void execute_staged(const Ref& r, EffectBuffer& buf, Chain& chain);
  /// Apply one event's staged effects (driver thread, in seq order).
  void replay_effects(EffectBuffer& buf);
  void start_workers();
  void stop_workers();
  void worker_loop(std::size_t index);
  /// Claim and run chains until the wave is exhausted (driver + workers).
  /// Runs under an epoch::Guard of `reader`: chain handlers may resolve
  /// published snapshots and defer memo publications through the domain.
  void run_chains(epoch::Reader& reader);

  /// push_back with engine-alloc accounting (capacity growth = one alloc).
  template <typename T>
  void push_tracked(std::vector<T>& v, const T& x) {
    if (v.size() == v.capacity()) ++stats_.engine_allocs;
    v.push_back(x);
  }

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  Rng rng_;
  std::size_t workers_ = 1;

  // Slab.
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_events_ = 0;
  std::size_t cancelled_pending_ = 0;  // stale refs not yet reaped

  // Near tier: per-microsecond buckets + occupancy bitmap.
  std::vector<std::vector<Ref>> buckets_ =
      std::vector<std::vector<Ref>>(kWheelTicks);
  std::vector<std::uint64_t> occupied_ =
      std::vector<std::uint64_t>(kWheelTicks / 64, 0);
  /// Next tick the drain cursor has not passed yet. All bucketed refs have
  /// time in [cursor_time_, cursor_time_ + kWheelTicks).
  SimTime cursor_time_ = 0;
  std::size_t wheel_count_ = 0;  // refs currently in buckets
  /// Lower bound on the earliest bucketed tick (exact after every insert,
  /// conservative after drains) — the occupancy scan starts here instead of
  /// walking empty words up from the cursor.
  SimTime wheel_min_ = kSimTimeNever;

  // Far tier: min-heap on (time, seq).
  std::vector<Ref> heap_;

  // Current same-timestamp batch, sorted by seq, drained front to back.
  std::vector<Ref> batch_;
  std::size_t batch_pos_ = 0;
  SimTime batch_time_ = 0;
  /// Largest seq already popped from the executing batch (sharded drain
  /// only): a keyed schedule into the current timestamp below this seq
  /// could not be ordered correctly and asserts.
  std::uint64_t exec_horizon_seq_ = 0;
  bool sharded_drain_ = false;

  // --- wave state (driver-owned between waves) --------------------------
  std::vector<Ref> par_refs_;           // current segment, seq order
  std::vector<EffectBuffer> buffers_;   // one per segment event (pooled)
  std::vector<Chain> chains_;           // per-shard slices (pooled)
  std::vector<std::uint32_t> chain_of_shard_;  // shard -> chain idx map
  std::vector<ShardId> touched_shards_;        // for resetting the map

  // Worker pool. Chain ids are globally monotonic: a wave publishes
  // [chain_base_, chain_limit_) and workers claim ids by bounded CAS on
  // next_chain_ — a worker waking against a stale limit backs off without
  // consuming an id, so late wakeups can never steal or strand work.
  // Completions count down chains_left_; the final decrement notifies the
  // driver, and wave_epoch_ (+ pool_cv_) wakes sleeping workers.
  std::vector<std::thread> threads_;
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;
  std::condition_variable done_cv_;
  std::atomic<std::uint64_t> wave_epoch_{0};
  bool shutdown_ = false;
  int spin_iters_ = 0;
  std::atomic<std::uint64_t> next_chain_{0};
  std::atomic<std::uint64_t> chain_base_{0};
  std::atomic<std::uint64_t> chain_limit_{0};
  std::atomic<std::uint32_t> chains_left_{0};

  /// Per-thread staging target; non-null only while that thread executes an
  /// event inside a wave. thread_local so concurrent Simulators (the sweep
  /// driver runs one per worker thread) never alias.
  static thread_local EffectBuffer* tls_staging_;

  /// Epoch-reclamation domain + the driver thread's reader registration
  /// (workers register their own on their stacks in worker_loop).
  epoch::Domain epoch_;
  epoch::Reader driver_reader_{epoch_};

  SimStats stats_;
};

}  // namespace hammerhead::sim

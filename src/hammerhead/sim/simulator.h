// Deterministic discrete-event simulator.
//
// All protocol activity (message delivery, timeouts, CPU work completion,
// client arrivals) is an event on a single priority queue ordered by
// (time, sequence-number). The sequence number makes simultaneous events
// fire in scheduling order, so a seeded run is bit-for-bit reproducible —
// the property tests rely on this to replay adversarial executions.
//
// Performance note: a 100-validator geo run delivers tens of thousands of
// messages per simulated round, so the hot path (schedule + pop) keeps
// per-event bookkeeping to one u64 hash-set insert and erase — the pending-id
// set that makes cancel() exact: cancelling an already-fired or unknown id is
// a true no-op (no state retained), so long-running simulations cannot leak
// through timer races.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "hammerhead/common/assert.h"
#include "hammerhead/common/rng.h"
#include "hammerhead/common/types.h"

namespace hammerhead::sim {

class Simulator {
 public:
  using Action = std::function<void()>;

  explicit Simulator(std::uint64_t seed) : rng_(seed) {}

  SimTime now() const { return now_; }
  Rng& rng() { return rng_; }

  /// Schedule `action` to run `delay` microseconds from now (delay >= 0).
  /// Returns an id usable with cancel().
  std::uint64_t schedule_after(SimTime delay, Action action) {
    HH_ASSERT_MSG(delay >= 0, "negative delay " << delay);
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Schedule at an absolute simulated time (>= now()).
  std::uint64_t schedule_at(SimTime when, Action action) {
    HH_ASSERT_MSG(when >= now_,
                  "schedule_at in the past: " << when << " < " << now_);
    const std::uint64_t id = next_seq_++;
    heap_.push(Event{when, id, std::move(action)});
    pending_ids_.insert(id);
    return id;
  }

  /// Cancel a pending event. Cancelling an already-fired, already-cancelled
  /// or unknown id is a true no-op (timer races are normal in the protocol
  /// layer) — in particular it retains no state, so repeated stale cancels
  /// cannot grow memory.
  void cancel(std::uint64_t id) {
    if (pending_ids_.erase(id) > 0) cancelled_.insert(id);
  }

  /// Run until the queue drains or simulated time would exceed `deadline`,
  /// whichever is first. Time ends at min(deadline, last event time).
  /// Returns the number of events executed.
  std::uint64_t run_until(SimTime deadline);

  /// Run until the event queue is completely empty.
  std::uint64_t run_to_completion();

  /// Execute exactly one pending event scheduled at or before `deadline`.
  /// Returns false if there is none.
  bool step(SimTime deadline = kSimTimeNever);

  bool empty() const { return heap_.empty(); }
  std::size_t pending_events() const { return heap_.size(); }
  std::uint64_t executed_events() const { return executed_; }
  /// Cancelled events that have not been reaped from the queue yet (bounded
  /// by pending_events(); exposed for the cancel-leak regression test).
  std::size_t cancelled_pending() const { return cancelled_.size(); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    mutable Action action;  // moved out on pop (top() returns const&)

    // Min-heap on (time, seq).
    bool operator<(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  Rng rng_;
  std::priority_queue<Event> heap_;
  std::unordered_set<std::uint64_t> pending_ids_;  // ids still in the heap
  std::unordered_set<std::uint64_t> cancelled_;    // pending but cancelled
};

}  // namespace hammerhead::sim

// Deterministic discrete-event simulator — batched slab engine.
//
// All protocol activity (message delivery, timeouts, CPU work completion,
// client arrivals) is an event ordered by (time, sequence-number). The
// sequence number makes simultaneous events fire in scheduling order, so a
// seeded run is bit-for-bit reproducible — the property tests rely on this
// to replay adversarial executions.
//
// Engine layout (the hot path runs tens of thousands of times per simulated
// round, so per-event bookkeeping is allocation-free in steady state):
//
//  * Event slots live in a pooled slab and are generation-stamped: an event
//    id is (generation << 32 | slot). cancel() bumps the slot generation and
//    frees the slot — O(1), no hash sets; stale references left in the queue
//    structures are skipped (and reaped) when encountered. A compaction
//    sweep keeps the number of stale references bounded by the number of
//    live events, so schedule/cancel storms run in O(1) memory.
//  * Two-tier time wheel: events within kWheelTicks microseconds of the
//    drain cursor go to exact per-microsecond buckets (O(1) insert, found
//    again via an occupancy bitmap); events farther out go to a min-heap of
//    24-byte POD refs. No migration between tiers is needed for
//    correctness: the next batch is the minimum of the next occupied bucket
//    and the heap top.
//  * Draining pops ALL events of the next timestamp as one batch, sorted by
//    seq — the (time, seq) total order is exactly the legacy single-heap
//    order, which the determinism/property tests replay.
//  * Two event kinds: an arbitrary std::function action (timers; may
//    allocate to store captures) and a raw (function-pointer, context, arg)
//    event — the allocation-free path the network's message fabric uses.
//    reserve_seq()/schedule_raw_keyed() let the network pre-assign order
//    keys for multicast fan-out so one live timer can stand in for n
//    per-recipient heap entries without changing the delivery order.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "hammerhead/common/assert.h"
#include "hammerhead/common/rng.h"
#include "hammerhead/common/types.h"

namespace hammerhead::sim {

/// Engine-internal instrumentation, exported as monitor gauges and bench
/// JSON columns by the harness.
struct SimStats {
  std::uint64_t executed = 0;         // events fired
  std::uint64_t raw_events = 0;       // fired via the raw (pooled) path
  std::uint64_t callback_events = 0;  // fired via std::function actions
  /// Heap allocations performed by the engine's own structures (slab/bucket/
  /// heap/batch capacity growth). Zero per event in steady state; the
  /// std::function storage of callback events is accounted by
  /// callback_events, not here.
  std::uint64_t engine_allocs = 0;
  std::uint64_t batches = 0;  // distinct timestamps drained
};

class Simulator {
 public:
  using Action = std::function<void()>;
  /// Raw event: no captures, no allocation. `arg` is caller-owned context.
  using RawFn = void (*)(void* ctx, std::uint64_t arg);

  explicit Simulator(std::uint64_t seed) : rng_(seed) {}

  SimTime now() const { return now_; }
  Rng& rng() { return rng_; }

  /// Schedule `action` to run `delay` microseconds from now (delay >= 0).
  /// Returns an id usable with cancel().
  std::uint64_t schedule_after(SimTime delay, Action action) {
    HH_ASSERT_MSG(delay >= 0, "negative delay " << delay);
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Schedule at an absolute simulated time (>= now()).
  std::uint64_t schedule_at(SimTime when, Action action);

  /// Allocation-free scheduling: `fn(ctx, arg)` fires at `when`.
  std::uint64_t schedule_raw_at(SimTime when, RawFn fn, void* ctx,
                                std::uint64_t arg) {
    return schedule_raw_keyed(when, next_seq_++, fn, ctx, arg);
  }

  /// Reserve the next (time, seq) order key without scheduling anything.
  /// Pair with schedule_raw_keyed(): the network reserves one seq per
  /// multicast recipient at send time, then keeps a single live event that
  /// re-keys itself through the reserved sequence — the delivery order is
  /// bit-identical to scheduling n independent events at send time.
  std::uint64_t reserve_seq() { return next_seq_++; }

  /// Schedule a raw event under a previously reserved order key. `seq` must
  /// come from reserve_seq() (i.e. be below the current counter); events at
  /// the executing timestamp must carry a seq greater than the event that
  /// schedules them.
  std::uint64_t schedule_raw_keyed(SimTime when, std::uint64_t seq, RawFn fn,
                                   void* ctx, std::uint64_t arg);

  /// Cancel a pending event. Cancelling an already-fired, already-cancelled
  /// or unknown id is a true no-op (timer races are normal in the protocol
  /// layer) — the slot generation check rejects stale ids without retaining
  /// any state, so repeated stale cancels cannot grow memory.
  void cancel(std::uint64_t id);

  /// Run until the queue drains or simulated time would exceed `deadline`,
  /// whichever is first. Time ends at min(deadline, last event time).
  /// Returns the number of events executed.
  std::uint64_t run_until(SimTime deadline);

  /// Run until the event queue is completely empty.
  std::uint64_t run_to_completion();

  /// Execute exactly one pending event scheduled at or before `deadline`.
  /// Returns false if there is none.
  bool step(SimTime deadline = kSimTimeNever);

  bool empty() const { return live_events_ == 0; }
  std::size_t pending_events() const { return live_events_; }
  std::uint64_t executed_events() const { return stats_.executed; }
  /// Cancelled events whose queue references have not been reaped yet
  /// (bounded by pending_events() + compaction threshold; exposed for the
  /// cancel-leak regression tests).
  std::size_t cancelled_pending() const { return cancelled_pending_; }
  /// Slots currently allocated in the slab (high-water mark of concurrently
  /// pending events; the cancel-storm test asserts this stays O(live)).
  std::size_t slab_slots() const { return slots_.size(); }
  std::uint64_t engine_allocs() const { return stats_.engine_allocs; }
  const SimStats& stats() const { return stats_; }

 private:
  // Near-tier wheel geometry: exact 1-microsecond buckets covering
  // [cursor_time_, cursor_time_ + kWheelTicks). 2^13 us (~8.2 ms) keeps the
  // whole bucket array (~200 KB) cache-resident, which empirically beats
  // wider horizons: CPU completions, egress spacing, fanout re-keys and
  // timer cascades (microseconds-to-milliseconds apart) insert at O(1) into
  // hot memory, while WAN first-arrivals and protocol timers ride the far
  // heap, which stays small (in-flight fanouts, not per-recipient events).
  static constexpr std::uint32_t kWheelBits = 13;
  static constexpr std::uint32_t kWheelTicks = 1u << kWheelBits;  // ~8.2 ms
  static constexpr std::uint32_t kWheelMask = kWheelTicks - 1;

  struct Slot {
    Action action;          // callback events only; empty otherwise
    RawFn raw = nullptr;    // raw events only
    void* ctx = nullptr;
    std::uint64_t arg = 0;
    std::uint32_t gen = 0;
    bool live = false;
  };

  /// Queue reference: POD, 24 bytes. Stale when slots_[slot].gen != gen.
  struct Ref {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  /// Min-heap order on (time, seq) for the far tier ("a sorts after b").
  static bool heap_later(const Ref& a, const Ref& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  bool stale(const Ref& r) const {
    const Slot& s = slots_[r.slot];
    return !s.live || s.gen != r.gen;
  }
  void enqueue(SimTime when, std::uint64_t seq, std::uint32_t slot);
  /// Find (and form) the next same-timestamp batch at or before `deadline`.
  bool form_batch(SimTime deadline);
  /// Earliest occupied bucket tick in the wheel window, or kSimTimeNever.
  SimTime next_bucket_tick();
  void fire(const Ref& r);
  /// Drop stale refs from every structure once they outnumber live events.
  void maybe_compact();

  /// push_back with engine-alloc accounting (capacity growth = one alloc).
  template <typename T>
  void push_tracked(std::vector<T>& v, const T& x) {
    if (v.size() == v.capacity()) ++stats_.engine_allocs;
    v.push_back(x);
  }

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  Rng rng_;

  // Slab.
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_events_ = 0;
  std::size_t cancelled_pending_ = 0;  // stale refs not yet reaped

  // Near tier: per-microsecond buckets + occupancy bitmap.
  std::vector<std::vector<Ref>> buckets_ =
      std::vector<std::vector<Ref>>(kWheelTicks);
  std::vector<std::uint64_t> occupied_ =
      std::vector<std::uint64_t>(kWheelTicks / 64, 0);
  /// Next tick the drain cursor has not passed yet. All bucketed refs have
  /// time in [cursor_time_, cursor_time_ + kWheelTicks).
  SimTime cursor_time_ = 0;
  std::size_t wheel_count_ = 0;  // refs currently in buckets
  /// Lower bound on the earliest bucketed tick (exact after every insert,
  /// conservative after drains) — the occupancy scan starts here instead of
  /// walking empty words up from the cursor.
  SimTime wheel_min_ = kSimTimeNever;

  // Far tier: min-heap on (time, seq).
  std::vector<Ref> heap_;

  // Current same-timestamp batch, sorted by seq, drained front to back.
  std::vector<Ref> batch_;
  std::size_t batch_pos_ = 0;
  SimTime batch_time_ = 0;

  SimStats stats_;
};

}  // namespace hammerhead::sim

#include "hammerhead/sim/simulator.h"

#include <algorithm>
#include <bit>

namespace hammerhead::sim {

// ------------------------------------------------------------------- slab

std::uint32_t Simulator::acquire_slot() {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    if (slots_.size() == slots_.capacity()) ++stats_.engine_allocs;
    slots_.emplace_back();
    slot = static_cast<std::uint32_t>(slots_.size() - 1);
  }
  slots_[slot].live = true;
  ++live_events_;
  return slot;
}

void Simulator::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.live = false;
  ++s.gen;  // every reference to this slot incarnation is now stale
  s.action = nullptr;
  s.raw = nullptr;
  s.ctx = nullptr;
  --live_events_;
  push_tracked(free_slots_, slot);
}

// --------------------------------------------------------------- schedule

void Simulator::enqueue(SimTime when, std::uint64_t seq, std::uint32_t slot) {
  const Ref ref{when, seq, slot, slots_[slot].gen};
  if (when == now_ && cursor_time_ > when) {
    // The drain cursor already passed this tick: the event joins the batch
    // currently being executed (its seq is greater than the executing
    // event's, so ordered insertion keeps the (time, seq) total order).
    if (batch_pos_ == batch_.size()) {
      batch_.clear();
      batch_pos_ = 0;
    }
    HH_ASSERT(batch_pos_ == batch_.size() || batch_time_ == when);
    batch_time_ = when;
    auto it = std::lower_bound(
        batch_.begin() + static_cast<std::ptrdiff_t>(batch_pos_), batch_.end(),
        seq, [](const Ref& r, std::uint64_t s) { return r.seq < s; });
    if (batch_.size() == batch_.capacity()) ++stats_.engine_allocs;
    batch_.insert(it, ref);
    return;
  }
  if (when < cursor_time_ + static_cast<SimTime>(kWheelTicks)) {
    HH_ASSERT(when >= cursor_time_);
    auto& bucket = buckets_[static_cast<std::size_t>(when) & kWheelMask];
    push_tracked(bucket, ref);
    occupied_[(static_cast<std::size_t>(when) & kWheelMask) >> 6] |=
        1ull << (static_cast<std::size_t>(when) & 63);
    ++wheel_count_;
    if (when < wheel_min_) wheel_min_ = when;
    return;
  }
  push_tracked(heap_, ref);
  std::push_heap(heap_.begin(), heap_.end(), &Simulator::heap_later);
}

std::uint64_t Simulator::schedule_at(SimTime when, Action action) {
  HH_ASSERT_MSG(when >= now_,
                "schedule_at in the past: " << when << " < " << now_);
  const std::uint32_t slot = acquire_slot();
  slots_[slot].action = std::move(action);
  const std::uint64_t seq = next_seq_++;
  enqueue(when, seq, slot);
  return (static_cast<std::uint64_t>(slots_[slot].gen) << 32) | slot;
}

std::uint64_t Simulator::schedule_raw_keyed(SimTime when, std::uint64_t seq,
                                            RawFn fn, void* ctx,
                                            std::uint64_t arg) {
  HH_ASSERT_MSG(when >= now_,
                "schedule_at in the past: " << when << " < " << now_);
  HH_ASSERT_MSG(seq < next_seq_, "order key " << seq << " was never reserved");
  HH_ASSERT(fn != nullptr);
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.raw = fn;
  s.ctx = ctx;
  s.arg = arg;
  enqueue(when, seq, slot);
  return (static_cast<std::uint64_t>(s.gen) << 32) | slot;
}

// ----------------------------------------------------------------- cancel

void Simulator::cancel(std::uint64_t id) {
  const std::uint32_t slot = static_cast<std::uint32_t>(id);
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  if (!s.live || s.gen != gen) return;  // fired / cancelled / never existed
  release_slot(slot);  // gen bump: every queued Ref to it is now stale
  ++cancelled_pending_;
  maybe_compact();
}

void Simulator::maybe_compact() {
  // Lazy deletion keeps cancel O(1); a sweep bounds the stale-ref backlog by
  // max(live, threshold) so schedule/cancel storms run in O(1) memory.
  if (cancelled_pending_ <= 1024 || cancelled_pending_ <= live_events_) return;

  auto is_stale = [this](const Ref& r) { return stale(r); };
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(), is_stale),
              heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), &Simulator::heap_later);
  for (std::size_t w = 0; w < occupied_.size(); ++w) {
    std::uint64_t word = occupied_[w];
    while (word != 0) {
      const std::size_t bit = static_cast<std::size_t>(std::countr_zero(word));
      word &= word - 1;
      auto& bucket = buckets_[(w << 6) | bit];
      const std::size_t before = bucket.size();
      bucket.erase(std::remove_if(bucket.begin(), bucket.end(), is_stale),
                   bucket.end());
      wheel_count_ -= before - bucket.size();
      if (bucket.empty()) occupied_[w] &= ~(1ull << bit);
    }
  }
  batch_.erase(std::remove_if(batch_.begin() +
                                  static_cast<std::ptrdiff_t>(batch_pos_),
                              batch_.end(), is_stale),
               batch_.end());
  cancelled_pending_ = 0;
}

// ------------------------------------------------------------------ drain

SimTime Simulator::next_bucket_tick() {
  if (wheel_count_ == 0) {
    wheel_min_ = kSimTimeNever;
    return kSimTimeNever;
  }
  // Start the scan at the min-tick lower bound rather than the cursor: after
  // a drain the bound is stale by exactly the drained tick, so this stays a
  // few words at most.
  const SimTime from = std::max(cursor_time_, wheel_min_);
  const std::size_t start = static_cast<std::size_t>(from) & kWheelMask;
  // Scan the occupancy bitmap from the cursor's ring position, wrapping once;
  // ring position p holds absolute tick cursor_time_ + ((p - start) & mask).
  std::size_t w = start >> 6;
  std::uint64_t word = occupied_[w] & (~0ull << (start & 63));
  for (std::size_t scanned = 0; scanned <= occupied_.size(); ++scanned) {
    if (word != 0) {
      const std::size_t p =
          (w << 6) | static_cast<std::size_t>(std::countr_zero(word));
      const SimTime tick =
          from + static_cast<SimTime>((p - start) & kWheelMask);
      wheel_min_ = tick;
      return tick;
    }
    w = (w + 1) % occupied_.size();
    word = occupied_[w];
    if (w == (start >> 6)) word &= ~(~0ull << (start & 63));  // wrapped tail
  }
  return kSimTimeNever;
}

bool Simulator::form_batch(SimTime deadline) {
  const SimTime bucket_tick = next_bucket_tick();
  // Reap stale heap tops eagerly while peeking.
  while (!heap_.empty() && stale(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), &Simulator::heap_later);
    heap_.pop_back();
    --cancelled_pending_;
  }
  const SimTime heap_tick = heap_.empty() ? kSimTimeNever : heap_.front().time;
  const SimTime t = std::min(bucket_tick, heap_tick);
  if (t == kSimTimeNever || t > deadline) return false;

  batch_.clear();
  batch_pos_ = 0;
  batch_time_ = t;
  if (bucket_tick == t) {
    auto& bucket = buckets_[static_cast<std::size_t>(t) & kWheelMask];
    for (const Ref& r : bucket) {
      if (batch_.size() == batch_.capacity()) ++stats_.engine_allocs;
      batch_.push_back(r);
    }
    wheel_count_ -= bucket.size();
    bucket.clear();  // keeps capacity; steady state re-fills without allocs
    occupied_[(static_cast<std::size_t>(t) & kWheelMask) >> 6] &=
        ~(1ull << (static_cast<std::size_t>(t) & 63));
  }
  while (!heap_.empty() && heap_.front().time == t) {
    if (batch_.size() == batch_.capacity()) ++stats_.engine_allocs;
    batch_.push_back(heap_.front());
    std::pop_heap(heap_.begin(), heap_.end(), &Simulator::heap_later);
    heap_.pop_back();
  }
  if (batch_.size() > 1)
    std::sort(batch_.begin(), batch_.end(),
              [](const Ref& a, const Ref& b) { return a.seq < b.seq; });
  cursor_time_ = t + 1;
  ++stats_.batches;
  return true;
}

void Simulator::fire(const Ref& r) {
  Slot& s = slots_[r.slot];
  const RawFn fn = s.raw;
  void* ctx = s.ctx;
  const std::uint64_t arg = s.arg;
  Action action;
  if (fn == nullptr) action = std::move(s.action);
  release_slot(r.slot);  // before running: the action may reuse the slot
  ++stats_.executed;
  if (fn != nullptr) {
    ++stats_.raw_events;
    fn(ctx, arg);
  } else {
    ++stats_.callback_events;
    action();
  }
}

bool Simulator::step(SimTime deadline) {
  for (;;) {
    while (batch_pos_ < batch_.size()) {
      if (batch_time_ > deadline) return false;
      const Ref r = batch_[batch_pos_];
      ++batch_pos_;
      if (stale(r)) {
        --cancelled_pending_;
        continue;
      }
      now_ = batch_time_;
      fire(r);
      return true;
    }
    if (!form_batch(deadline)) return false;
  }
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  std::uint64_t count = 0;
  while (step(deadline)) ++count;
  if (now_ < deadline && deadline != kSimTimeNever) now_ = deadline;
  return count;
}

std::uint64_t Simulator::run_to_completion() {
  std::uint64_t count = 0;
  while (step()) ++count;
  return count;
}

}  // namespace hammerhead::sim

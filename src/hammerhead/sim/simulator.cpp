#include "hammerhead/sim/simulator.h"

#include <algorithm>
#include <bit>

namespace hammerhead::sim {

thread_local Simulator::EffectBuffer* Simulator::tls_staging_ = nullptr;

namespace {
/// Chain-claim sentinel and the empty pin passed to client ops without one.
constexpr std::uint32_t kNoChain = 0xffffffffu;
constexpr std::uint32_t kNoAux = 0xffffffffu;
const std::shared_ptr<const void> kNullPin{};
}  // namespace

// ---------------------------------------------------------------- lifecycle

Simulator::Simulator(std::uint64_t seed, std::size_t workers)
    : rng_(seed), workers_(workers == 0 ? 1 : workers) {
  if (workers_ > 1) start_workers();
}

Simulator::~Simulator() { stop_workers(); }

// ------------------------------------------------------------------- slab

std::uint32_t Simulator::acquire_slot() {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    if (slots_.size() == slots_.capacity()) ++stats_.engine_allocs;
    slots_.emplace_back();
    slot = static_cast<std::uint32_t>(slots_.size() - 1);
  }
  slots_[slot].live = true;
  ++live_events_;
  return slot;
}

void Simulator::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.live = false;
  s.executing = false;
  ++s.gen;  // every reference to this slot incarnation is now stale
  s.action = nullptr;
  s.raw = nullptr;
  s.ctx = nullptr;
  s.shard = kSerialShard;
  --live_events_;
  push_tracked(free_slots_, slot);
}

// --------------------------------------------------------------- schedule

void Simulator::enqueue(SimTime when, std::uint64_t seq, std::uint32_t slot) {
  const Ref ref{when, seq, slot, slots_[slot].gen};
  if (when == now_ && cursor_time_ > when) {
    // The drain cursor already passed this tick: the event joins the batch
    // currently being executed (its seq is greater than the executing
    // event's, so ordered insertion keeps the (time, seq) total order).
    // Under a sharded drain, events already handed to the wave were popped
    // from batch_, so a key below the executed horizon cannot be ordered.
    HH_ASSERT_MSG(!sharded_drain_ || seq > exec_horizon_seq_,
                  "same-tick schedule keyed below the executed horizon");
    if (batch_pos_ == batch_.size()) {
      batch_.clear();
      batch_pos_ = 0;
    }
    HH_ASSERT(batch_pos_ == batch_.size() || batch_time_ == when);
    batch_time_ = when;
    auto it = std::lower_bound(
        batch_.begin() + static_cast<std::ptrdiff_t>(batch_pos_), batch_.end(),
        seq, [](const Ref& r, std::uint64_t s) { return r.seq < s; });
    if (batch_.size() == batch_.capacity()) ++stats_.engine_allocs;
    batch_.insert(it, ref);
    return;
  }
  if (when < cursor_time_ + static_cast<SimTime>(kWheelTicks)) {
    HH_ASSERT(when >= cursor_time_);
    auto& bucket = buckets_[static_cast<std::size_t>(when) & kWheelMask];
    push_tracked(bucket, ref);
    occupied_[(static_cast<std::size_t>(when) & kWheelMask) >> 6] |=
        1ull << (static_cast<std::size_t>(when) & 63);
    ++wheel_count_;
    if (when < wheel_min_) wheel_min_ = when;
    return;
  }
  push_tracked(heap_, ref);
  std::push_heap(heap_.begin(), heap_.end(), &Simulator::heap_later);
}

std::uint64_t Simulator::schedule_at(SimTime when, Action action,
                                     ShardId shard) {
  HH_ASSERT_MSG(when >= now_,
                "schedule_at in the past: " << when << " < " << now_);
  if (EffectBuffer* buf = tls_staging_) {
    EffectBuffer::Op op{};
    op.kind = EffectBuffer::Op::Kind::ScheduleFn;
    op.shard = shard;
    op.when = when;
    op.aux = static_cast<std::uint32_t>(buf->actions.size());
    buf->actions.push_back(std::move(action));
    buf->ops.push_back(op);
    return kStagedEventId;
  }
  const std::uint32_t slot = acquire_slot();
  slots_[slot].action = std::move(action);
  slots_[slot].shard = shard;
  const std::uint64_t seq = next_seq_++;
  enqueue(when, seq, slot);
  return (static_cast<std::uint64_t>(slots_[slot].gen) << 32) | slot;
}

std::uint64_t Simulator::schedule_raw_at(SimTime when, RawFn fn, void* ctx,
                                         std::uint64_t arg, ShardId shard) {
  if (tls_staging_ != nullptr)
    return schedule_raw_keyed(when, kStagedEventId, fn, ctx, arg, shard);
  return schedule_raw_keyed(when, next_seq_++, fn, ctx, arg, shard);
}

std::uint64_t Simulator::schedule_raw_keyed(SimTime when, std::uint64_t seq,
                                            RawFn fn, void* ctx,
                                            std::uint64_t arg, ShardId shard) {
  HH_ASSERT_MSG(when >= now_,
                "schedule_at in the past: " << when << " < " << now_);
  HH_ASSERT(fn != nullptr);
  if (EffectBuffer* buf = tls_staging_) {
    HH_ASSERT_MSG(seq == kStagedEventId || seq < next_seq_,
                  "order key " << seq << " was never reserved");
    EffectBuffer::Op op{};
    op.kind = EffectBuffer::Op::Kind::ScheduleRaw;
    op.shard = shard;
    op.when = when;
    op.seq = seq;
    op.raw = fn;
    op.ctx = ctx;
    op.a = arg;
    buf->ops.push_back(op);
    return kStagedEventId;
  }
  HH_ASSERT_MSG(seq < next_seq_, "order key " << seq << " was never reserved");
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.raw = fn;
  s.ctx = ctx;
  s.arg = arg;
  s.shard = shard;
  enqueue(when, seq, slot);
  return (static_cast<std::uint64_t>(s.gen) << 32) | slot;
}

// ----------------------------------------------------------------- cancel

void Simulator::cancel(std::uint64_t id) {
  if (EffectBuffer* buf = tls_staging_) {
    if (id == kStagedEventId) return;  // staged schedules are uncancellable
    EffectBuffer::Op op{};
    op.kind = EffectBuffer::Op::Kind::Cancel;
    op.a = id;
    buf->ops.push_back(op);
    return;
  }
  const std::uint32_t slot = static_cast<std::uint32_t>(id);
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  if (!s.live || s.gen != gen) return;  // fired / cancelled / never existed
  // A replayed cancel aimed at an event that executed concurrently in the
  // same wave cannot be serialized — no caller does this (handlers never
  // cancel events of other shards at the executing timestamp); fail loudly
  // rather than diverge from the serial schedule.
  HH_ASSERT_MSG(!s.executing, "cancel of a concurrently executing event");
  release_slot(slot);  // gen bump: every queued Ref to it is now stale
  ++cancelled_pending_;
  maybe_compact();
}

void Simulator::serialize_state(ByteWriter& w) const {
  HH_ASSERT_MSG(tls_staging_ == nullptr,
                "serialize_state() inside a sharded wave");
  // Engine scalars: the drain cursor position and the RNG stream offset.
  w.u64(static_cast<std::uint64_t>(now_));
  w.u64(next_seq_);
  w.u64(stats_.executed);
  for (const std::uint64_t word : rng_.state()) w.u64(word);
  // Pending-event schedule: live refs from every queue structure, sorted
  // into the one (time, seq) total order the drain would pop them in.
  std::vector<Ref> live;
  live.reserve(live_events_);
  auto keep_live = [&](const Ref& r) {
    if (!stale(r)) live.push_back(r);
  };
  for (const std::vector<Ref>& bucket : buckets_)
    for (const Ref& r : bucket) keep_live(r);
  for (const Ref& r : heap_) keep_live(r);
  for (std::size_t i = batch_pos_; i < batch_.size(); ++i) keep_live(batch_[i]);
  std::sort(live.begin(), live.end(), [](const Ref& a, const Ref& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  });
  w.u64(live.size());
  for (const Ref& r : live) {
    const Slot& s = slots_[r.slot];
    w.u64(static_cast<std::uint64_t>(r.time));
    w.u64(r.seq);
    w.u32(s.shard);
    w.u8(s.raw != nullptr ? 1 : 0);
  }
}

void Simulator::maybe_compact() {
  // Lazy deletion keeps cancel O(1); a sweep bounds the stale-ref backlog by
  // max(live, threshold) so schedule/cancel storms run in O(1) memory.
  if (cancelled_pending_ <= 1024 || cancelled_pending_ <= live_events_) return;

  auto is_stale = [this](const Ref& r) { return stale(r); };
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(), is_stale),
              heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), &Simulator::heap_later);
  for (std::size_t w = 0; w < occupied_.size(); ++w) {
    std::uint64_t word = occupied_[w];
    while (word != 0) {
      const std::size_t bit = static_cast<std::size_t>(std::countr_zero(word));
      word &= word - 1;
      auto& bucket = buckets_[(w << 6) | bit];
      const std::size_t before = bucket.size();
      bucket.erase(std::remove_if(bucket.begin(), bucket.end(), is_stale),
                   bucket.end());
      wheel_count_ -= before - bucket.size();
      if (bucket.empty()) occupied_[w] &= ~(1ull << bit);
    }
  }
  batch_.erase(std::remove_if(batch_.begin() +
                                  static_cast<std::ptrdiff_t>(batch_pos_),
                              batch_.end(), is_stale),
               batch_.end());
  cancelled_pending_ = 0;
}

// ------------------------------------------------------------------ stage

void Simulator::defer(std::function<void()> fn) {
  if (EffectBuffer* buf = tls_staging_) {
    EffectBuffer::Op op{};
    op.kind = EffectBuffer::Op::Kind::Closure;
    op.aux = static_cast<std::uint32_t>(buf->closures.size());
    buf->closures.push_back(std::move(fn));
    buf->ops.push_back(op);
    return;
  }
  fn();
}

bool Simulator::stage_client(ClientFn fn, void* ctx, std::uint64_t a,
                             std::uint64_t b,
                             std::shared_ptr<const void> pin) {
  EffectBuffer* buf = tls_staging_;
  if (buf == nullptr) return false;
  EffectBuffer::Op op{};
  op.kind = EffectBuffer::Op::Kind::Client;
  op.client = fn;
  op.ctx = ctx;
  op.a = a;
  op.b = b;
  op.aux = kNoAux;
  if (pin != nullptr) {
    op.aux = static_cast<std::uint32_t>(buf->pins.size());
    buf->pins.push_back(std::move(pin));
  }
  buf->ops.push_back(op);
  return true;
}

void Simulator::replay_effects(EffectBuffer& buf) {
  stats_.staged_ops += buf.ops.size();
  for (EffectBuffer::Op& op : buf.ops) {
    switch (op.kind) {
      case EffectBuffer::Op::Kind::ScheduleFn:
        schedule_at(op.when, std::move(buf.actions[op.aux]), op.shard);
        break;
      case EffectBuffer::Op::Kind::ScheduleRaw:
        if (op.seq == kStagedEventId)
          schedule_raw_at(op.when, op.raw, op.ctx, op.a, op.shard);
        else
          schedule_raw_keyed(op.when, op.seq, op.raw, op.ctx, op.a, op.shard);
        break;
      case EffectBuffer::Op::Kind::Cancel:
        cancel(op.a);
        break;
      case EffectBuffer::Op::Kind::Closure:
        buf.closures[op.aux]();
        break;
      case EffectBuffer::Op::Kind::Client:
        op.client(op.ctx, op.a, op.b,
                  op.aux == kNoAux ? kNullPin : buf.pins[op.aux]);
        break;
    }
  }
}

// ------------------------------------------------------------------ drain

SimTime Simulator::next_bucket_tick() {
  if (wheel_count_ == 0) {
    wheel_min_ = kSimTimeNever;
    return kSimTimeNever;
  }
  // Start the scan at the min-tick lower bound rather than the cursor: after
  // a drain the bound is stale by exactly the drained tick, so this stays a
  // few words at most.
  const SimTime from = std::max(cursor_time_, wheel_min_);
  const std::size_t start = static_cast<std::size_t>(from) & kWheelMask;
  // Scan the occupancy bitmap from the cursor's ring position, wrapping once;
  // ring position p holds absolute tick cursor_time_ + ((p - start) & mask).
  std::size_t w = start >> 6;
  std::uint64_t word = occupied_[w] & (~0ull << (start & 63));
  for (std::size_t scanned = 0; scanned <= occupied_.size(); ++scanned) {
    if (word != 0) {
      const std::size_t p =
          (w << 6) | static_cast<std::size_t>(std::countr_zero(word));
      const SimTime tick =
          from + static_cast<SimTime>((p - start) & kWheelMask);
      wheel_min_ = tick;
      return tick;
    }
    w = (w + 1) % occupied_.size();
    word = occupied_[w];
    if (w == (start >> 6)) word &= ~(~0ull << (start & 63));  // wrapped tail
  }
  return kSimTimeNever;
}

bool Simulator::form_batch(SimTime deadline) {
  const SimTime bucket_tick = next_bucket_tick();
  // Reap stale heap tops eagerly while peeking.
  while (!heap_.empty() && stale(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), &Simulator::heap_later);
    heap_.pop_back();
    --cancelled_pending_;
  }
  const SimTime heap_tick = heap_.empty() ? kSimTimeNever : heap_.front().time;
  const SimTime t = std::min(bucket_tick, heap_tick);
  if (t == kSimTimeNever || t > deadline) return false;

  batch_.clear();
  batch_pos_ = 0;
  batch_time_ = t;
  exec_horizon_seq_ = 0;
  if (bucket_tick == t) {
    auto& bucket = buckets_[static_cast<std::size_t>(t) & kWheelMask];
    for (const Ref& r : bucket) {
      if (batch_.size() == batch_.capacity()) ++stats_.engine_allocs;
      batch_.push_back(r);
    }
    wheel_count_ -= bucket.size();
    bucket.clear();  // keeps capacity; steady state re-fills without allocs
    occupied_[(static_cast<std::size_t>(t) & kWheelMask) >> 6] &=
        ~(1ull << (static_cast<std::size_t>(t) & 63));
  }
  while (!heap_.empty() && heap_.front().time == t) {
    if (batch_.size() == batch_.capacity()) ++stats_.engine_allocs;
    batch_.push_back(heap_.front());
    std::pop_heap(heap_.begin(), heap_.end(), &Simulator::heap_later);
    heap_.pop_back();
  }
  if (batch_.size() > 1)
    std::sort(batch_.begin(), batch_.end(),
              [](const Ref& a, const Ref& b) { return a.seq < b.seq; });
  cursor_time_ = t + 1;
  ++stats_.batches;
  return true;
}

void Simulator::fire(const Ref& r) {
  Slot& s = slots_[r.slot];
  const RawFn fn = s.raw;
  void* ctx = s.ctx;
  const std::uint64_t arg = s.arg;
  Action action;
  if (fn == nullptr) action = std::move(s.action);
  release_slot(r.slot);  // before running: the action may reuse the slot
  ++stats_.executed;
  if (fn != nullptr) {
    ++stats_.raw_events;
    fn(ctx, arg);
  } else {
    ++stats_.callback_events;
    action();
  }
}

bool Simulator::step(SimTime deadline) {
  for (;;) {
    while (batch_pos_ < batch_.size()) {
      if (batch_time_ > deadline) return false;
      const Ref r = batch_[batch_pos_];
      ++batch_pos_;
      if (stale(r)) {
        --cancelled_pending_;
        continue;
      }
      now_ = batch_time_;
      fire(r);
      return true;
    }
    if (!form_batch(deadline)) return false;
  }
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  std::uint64_t count = 0;
  if (workers_ <= 1) {
    while (step(deadline)) ++count;
  } else {
    sharded_drain_ = true;
    for (;;) {
      if (batch_pos_ >= batch_.size()) {
        // Batch boundary — every worker is parked at the wave barrier, so
        // this is the quiescent point: run deferred memo publications,
        // publish resolution snapshots (quiescent hooks), open a new epoch
        // and reclaim retired snapshots past grace. The final advance (the
        // one whose form_batch returns false) flushes the last batch.
        epoch_.advance();
        if (!form_batch(deadline)) break;
      }
      if (batch_time_ > deadline) break;  // leftover batch beyond deadline
      count += drain_batch_sharded();
    }
    sharded_drain_ = false;
  }
  if (now_ < deadline && deadline != kSimTimeNever) now_ = deadline;
  return count;
}

std::uint64_t Simulator::run_to_completion() { return run_until(kSimTimeNever); }

// -------------------------------------------------------- sharded drain

std::uint64_t Simulator::drain_batch_sharded() {
  std::uint64_t executed = 0;
  while (batch_pos_ < batch_.size()) {
    par_refs_.clear();
    // Collect a maximal run of shard-owned events. Serial events execute in
    // place between runs — they may touch any state, so they act as
    // barriers inside the batch.
    while (batch_pos_ < batch_.size()) {
      const Ref r = batch_[batch_pos_];
      if (stale(r)) {
        ++batch_pos_;
        --cancelled_pending_;
        continue;
      }
      if (slots_[r.slot].shard == kSerialShard) {
        if (!par_refs_.empty()) break;  // run the collected wave first
        ++batch_pos_;
        exec_horizon_seq_ = r.seq;
        now_ = batch_time_;
        fire(r);
        ++executed;
        continue;
      }
      par_refs_.push_back(r);
      ++batch_pos_;
    }
    if (par_refs_.empty()) continue;
    exec_horizon_seq_ = par_refs_.back().seq;
    now_ = batch_time_;
    executed += par_refs_.size();
    run_wave();
  }
  return executed;
}

void Simulator::run_wave() {
  // Tiny runs: the pool handshake costs more than it spreads — fire
  // serially, which is exactly the legacy schedule.
  if (par_refs_.size() < kMinParallelSegment) {
    for (const Ref& r : par_refs_) fire(r);
    return;
  }

  // Partition into per-shard chains, preserving seq order inside a shard.
  std::uint32_t used = 0;
  for (std::uint32_t i = 0; i < par_refs_.size(); ++i) {
    const ShardId shard = slots_[par_refs_[i].slot].shard;
    if (shard >= chain_of_shard_.size())
      chain_of_shard_.resize(shard + 1, kNoChain);
    std::uint32_t c = chain_of_shard_[shard];
    if (c == kNoChain) {
      c = used++;
      if (chains_.size() < used) chains_.emplace_back();
      chains_[c].events.clear();
      chains_[c].raw_fired = 0;
      chains_[c].fn_fired = 0;
      chains_[c].error = nullptr;
      chain_of_shard_[shard] = c;
      touched_shards_.push_back(shard);
    }
    chains_[c].events.push_back(i);
  }
  for (const ShardId s : touched_shards_) chain_of_shard_[s] = kNoChain;
  touched_shards_.clear();

  if (used < 2) {  // one shard: no parallelism to exploit
    for (const Ref& r : par_refs_) fire(r);
    return;
  }

  if (buffers_.size() < par_refs_.size()) buffers_.resize(par_refs_.size());
  for (std::uint32_t i = 0; i < par_refs_.size(); ++i) buffers_[i].clear();
  for (const Ref& r : par_refs_) slots_[r.slot].executing = true;

  // Publish the wave: chain ids are globally monotonic, so a worker waking
  // late against a previous wave sees ids at/beyond its stale limit and
  // backs off without touching the new wave's arrays (see run_chains).
  chains_left_.store(used, std::memory_order_relaxed);
  chain_base_.store(next_chain_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  chain_limit_.store(chain_base_.load(std::memory_order_relaxed) + used,
                     std::memory_order_release);
  wave_epoch_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(pool_mu_);  // pairs with the cv sleep
  }
  pool_cv_.notify_all();

  run_chains(driver_reader_);  // the driver is worker zero
  if (chains_left_.load(std::memory_order_acquire) != 0) {
    std::unique_lock<std::mutex> lk(pool_mu_);
    done_cv_.wait(lk, [&] {
      return chains_left_.load(std::memory_order_acquire) == 0;
    });
  }

  ++stats_.parallel_segments;
  stats_.parallel_events += par_refs_.size();
  stats_.executed += par_refs_.size();
  std::exception_ptr error;
  for (std::uint32_t c = 0; c < used; ++c) {
    stats_.raw_events += chains_[c].raw_fired;
    stats_.callback_events += chains_[c].fn_fired;
    if (chains_[c].error != nullptr && error == nullptr)
      error = chains_[c].error;
  }
  if (error != nullptr) {
    // A handler threw mid-wave: shard state is torn, the run is aborted
    // (the sweep driver contains this per cell). Unwind cleanly.
    for (const Ref& r : par_refs_) slots_[r.slot].executing = false;
    std::rethrow_exception(error);
  }

  // Replay staged effects in exact (time, seq) order: slot release and
  // effect application interleave exactly as a serial drain would.
  for (std::uint32_t i = 0; i < par_refs_.size(); ++i) {
    const Ref& r = par_refs_[i];
    slots_[r.slot].executing = false;
    release_slot(r.slot);
    replay_effects(buffers_[i]);
  }
}

void Simulator::execute_staged(const Ref& r, EffectBuffer& buf, Chain& chain) {
  Slot& s = slots_[r.slot];
  tls_staging_ = &buf;
  if (s.raw != nullptr) {
    ++chain.raw_fired;
    s.raw(s.ctx, s.arg);
  } else {
    ++chain.fn_fired;
    s.action();
  }
  tls_staging_ = nullptr;
}

void Simulator::run_chains(epoch::Reader& reader) {
  // Pin the epoch for the wave: handlers may probe published resolution
  // snapshots (plain loads) and route memo writes through Domain::defer.
  epoch::Guard guard(reader);
  const std::uint64_t limit = chain_limit_.load(std::memory_order_acquire);
  const std::uint64_t base = chain_base_.load(std::memory_order_relaxed);
  for (;;) {
    std::uint64_t cur = next_chain_.load(std::memory_order_relaxed);
    if (cur >= limit) break;
    if (!next_chain_.compare_exchange_weak(cur, cur + 1,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed))
      continue;
    Chain& chain = chains_[cur - base];
    try {
      for (const std::uint32_t idx : chain.events)
        execute_staged(par_refs_[idx], buffers_[idx], chain);
    } catch (...) {
      chain.error = std::current_exception();
      tls_staging_ = nullptr;
    }
    if (chains_left_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lk(pool_mu_);
      done_cv_.notify_all();
    }
  }
}

// ------------------------------------------------------------ worker pool

void Simulator::start_workers() {
  // Spin briefly before sleeping only when spare hardware threads exist;
  // on a single core the spin would just steal the driver's timeslice.
  spin_iters_ = std::thread::hardware_concurrency() > 1 ? 4096 : 0;
  threads_.reserve(workers_ - 1);
  for (std::size_t i = 0; i + 1 < workers_; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

void Simulator::stop_workers() {
  if (threads_.empty()) return;
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    shutdown_ = true;
  }
  pool_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
}

void Simulator::worker_loop(std::size_t) {
  epoch::Reader reader(epoch_);
  std::uint64_t seen = 0;
  for (;;) {
    bool woke = false;
    for (int i = 0; i < spin_iters_; ++i) {
      if (wave_epoch_.load(std::memory_order_acquire) != seen) {
        woke = true;
        break;
      }
    }
    if (!woke) {
      std::unique_lock<std::mutex> lk(pool_mu_);
      pool_cv_.wait(lk, [&] {
        return shutdown_ ||
               wave_epoch_.load(std::memory_order_acquire) != seen;
      });
      if (shutdown_) return;
    }
    seen = wave_epoch_.load(std::memory_order_acquire);
    run_chains(reader);
  }
}

}  // namespace hammerhead::sim

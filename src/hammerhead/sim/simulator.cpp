#include "hammerhead/sim/simulator.h"

namespace hammerhead::sim {

bool Simulator::step(SimTime deadline) {
  while (!heap_.empty()) {
    const Event& top = heap_.top();
    if (!cancelled_.empty() && cancelled_.erase(top.seq) > 0) {
      heap_.pop();
      continue;
    }
    if (top.time > deadline) return false;
    Action action = std::move(top.action);
    now_ = top.time;
    pending_ids_.erase(top.seq);
    heap_.pop();
    ++executed_;
    action();
    return true;
  }
  return false;
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  std::uint64_t count = 0;
  while (step(deadline)) ++count;
  if (now_ < deadline && deadline != kSimTimeNever) now_ = deadline;
  return count;
}

std::uint64_t Simulator::run_to_completion() {
  std::uint64_t count = 0;
  while (step()) ++count;
  return count;
}

}  // namespace hammerhead::sim

#include "hammerhead/rbc/bracha.h"

#include "hammerhead/crypto/sha256.h"

namespace hammerhead::rbc {

BrachaBroadcaster::BrachaBroadcaster(net::Network& network,
                                     const crypto::Committee& committee,
                                     ValidatorIndex self, DeliverFn deliver)
    : network_(network),
      committee_(committee),
      self_(self),
      deliver_(std::move(deliver)),
      voter_words_((committee.size() + 63) / 64) {
  network_.register_sink(self_, this);
}

void BrachaBroadcaster::r_bcast(Payload payload, Round round) {
  multicast(RbcPhase::Send, self_, round, std::move(payload));
}

void BrachaBroadcaster::multicast(RbcPhase phase, ValidatorIndex origin,
                                  Round round, Payload payload) {
  auto msg = std::make_shared<RbcMessage>();
  msg->phase = phase;
  msg->origin = origin;
  msg->round = round;
  msg->payload = std::move(payload);
  // Handle our own copy synchronously (loopback), then fan out: one fanout
  // record for the whole committee.
  handle(self_, *msg);
  network_.multicast(self_, std::move(msg));
}

void BrachaBroadcaster::deliver(ValidatorIndex from,
                                const net::MessagePtr& msg) {
  if (msg->kind() != net::MsgKind::Rbc) return;  // not ours
  const auto& rbc = static_cast<const RbcMessage&>(*msg);
  // SEND must come from its claimed origin (authenticated channels).
  if (rbc.phase == RbcPhase::Send && rbc.origin != from) return;
  handle(from, rbc);
}

BrachaBroadcaster::Candidate& BrachaBroadcaster::candidate_for(
    SlotState& slot, const Digest& digest, const Payload& payload) {
  for (Candidate& c : slot.candidates)
    if (c.digest == digest) return c;
  Candidate& c = slot.candidates.emplace_back();
  c.digest = digest;
  c.payload = payload;
  c.echo_voters.resize(voter_words_, 0);
  c.ready_voters.resize(voter_words_, 0);
  return c;
}

bool BrachaBroadcaster::add_voter(std::vector<std::uint64_t>& bits,
                                  ValidatorIndex voter) {
  const std::uint64_t mask = std::uint64_t{1} << (voter % 64);
  std::uint64_t& word = bits[voter / 64];
  if ((word & mask) != 0) return false;
  word |= mask;
  return true;
}

void BrachaBroadcaster::handle(ValidatorIndex from, const RbcMessage& m) {
  const SlotKey key{m.origin, m.round};
  SlotState& slot = slots_[key];
  if (slot.delivered) return;
  if (from >= committee_.size()) return;

  const Digest digest = crypto::Sha256::hash(
      std::span<const std::uint8_t>(m.payload.data(), m.payload.size()));
  Candidate& cand = candidate_for(slot, digest, m.payload);

  switch (m.phase) {
    case RbcPhase::Send:
      if (!slot.sent_echo) {
        slot.sent_echo = true;
        multicast(RbcPhase::Echo, m.origin, m.round, m.payload);
        // `slot` and `cand` stay valid: the loopback ECHO lands in this same
        // slot entry, and candidates never shrink while undelivered.
      }
      break;
    case RbcPhase::Echo:
      if (add_voter(cand.echo_voters, from))
        cand.echo_stake += committee_.stake_of(from);
      break;
    case RbcPhase::Ready:
      if (add_voter(cand.ready_voters, from))
        cand.ready_stake += committee_.stake_of(from);
      break;
  }
  maybe_progress(key, slot);
}

void BrachaBroadcaster::maybe_progress(const SlotKey& key, SlotState& slot) {
  // READY amplification: 2f+1 echoes or f+1 readies for the same payload.
  if (!slot.sent_ready) {
    for (const Candidate& c : slot.candidates) {
      if (c.echo_stake >= committee_.quorum_threshold() ||
          c.ready_stake >= committee_.validity_threshold()) {
        slot.sent_ready = true;
        multicast(RbcPhase::Ready, key.origin, key.round, c.payload);
        break;
      }
    }
  }
  // Delivery: 2f+1 readies for the same payload.
  if (!slot.delivered) {
    for (const Candidate& c : slot.candidates) {
      if (c.ready_stake >= committee_.quorum_threshold()) {
        slot.delivered = true;
        ++delivered_;
        if (deliver_) deliver_(c.payload, key.round, key.origin);
        break;
      }
    }
  }
}

}  // namespace hammerhead::rbc

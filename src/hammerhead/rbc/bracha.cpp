#include "hammerhead/rbc/bracha.h"

#include "hammerhead/crypto/sha256.h"

namespace hammerhead::rbc {

BrachaBroadcaster::BrachaBroadcaster(net::Network& network,
                                     const crypto::Committee& committee,
                                     ValidatorIndex self, DeliverFn deliver)
    : network_(network),
      committee_(committee),
      self_(self),
      deliver_(std::move(deliver)) {
  network_.register_handler(
      self_, [this](ValidatorIndex from, const net::MessagePtr& msg) {
        on_message(from, msg);
      });
}

void BrachaBroadcaster::r_bcast(Payload payload, Round round) {
  multicast(RbcPhase::Send, self_, round, std::move(payload));
}

void BrachaBroadcaster::multicast(RbcPhase phase, ValidatorIndex origin,
                                  Round round, Payload payload) {
  auto msg = std::make_shared<RbcMessage>();
  msg->phase = phase;
  msg->origin = origin;
  msg->round = round;
  msg->payload = std::move(payload);
  // Handle our own copy synchronously (loopback), then fan out.
  handle(self_, *msg);
  network_.broadcast(self_, msg);
}

void BrachaBroadcaster::on_message(ValidatorIndex from,
                                   const net::MessagePtr& msg) {
  const auto* rbc = dynamic_cast<const RbcMessage*>(msg.get());
  if (rbc == nullptr) return;  // not ours
  // SEND must come from its claimed origin (authenticated channels).
  if (rbc->phase == RbcPhase::Send && rbc->origin != from) return;
  handle(from, *rbc);
}

Stake BrachaBroadcaster::stake_of(const std::set<ValidatorIndex>& set) const {
  Stake sum = 0;
  for (ValidatorIndex v : set) sum += committee_.stake_of(v);
  return sum;
}

void BrachaBroadcaster::handle(ValidatorIndex from, const RbcMessage& m) {
  const SlotKey key{m.origin, m.round};
  SlotState& slot = slots_[key];
  if (slot.delivered) return;

  const Digest digest = crypto::Sha256::hash(
      std::span<const std::uint8_t>(m.payload.data(), m.payload.size()));
  slot.payloads.try_emplace(digest, m.payload);

  switch (m.phase) {
    case RbcPhase::Send:
      if (!slot.sent_echo) {
        slot.sent_echo = true;
        multicast(RbcPhase::Echo, m.origin, m.round, m.payload);
      }
      break;
    case RbcPhase::Echo:
      slot.echoes[digest].insert(from);
      break;
    case RbcPhase::Ready:
      slot.readies[digest].insert(from);
      break;
  }
  maybe_progress(key, slot);
}

void BrachaBroadcaster::maybe_progress(const SlotKey& key, SlotState& slot) {
  // READY amplification: 2f+1 echoes or f+1 readies for the same payload.
  if (!slot.sent_ready) {
    for (const auto& [digest, voters] : slot.echoes) {
      if (stake_of(voters) >= committee_.quorum_threshold()) {
        slot.sent_ready = true;
        multicast(RbcPhase::Ready, key.origin, key.round,
                  slot.payloads.at(digest));
        break;
      }
    }
  }
  if (!slot.sent_ready) {
    for (const auto& [digest, voters] : slot.readies) {
      if (stake_of(voters) >= committee_.validity_threshold()) {
        slot.sent_ready = true;
        multicast(RbcPhase::Ready, key.origin, key.round,
                  slot.payloads.at(digest));
        break;
      }
    }
  }
  // Delivery: 2f+1 readies for the same payload.
  if (!slot.delivered) {
    for (const auto& [digest, voters] : slot.readies) {
      if (stake_of(voters) >= committee_.quorum_threshold()) {
        slot.delivered = true;
        ++delivered_;
        if (deliver_) deliver_(slot.payloads.at(digest), key.round, key.origin);
        break;
      }
    }
  }
}

}  // namespace hammerhead::rbc

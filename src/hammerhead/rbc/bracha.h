// Bracha-style Byzantine Reliable Broadcast (Definition 1 in the paper).
//
// HammerHead's DAG layer realizes reliable broadcast through Narwhal
// certificates (a certificate is transferable proof that 2f+1 validators saw
// one unique header per (author, round)). This module provides the classic
// message-based primitive as a standalone, independently tested substrate:
//
//   r_bcast:   origin multicasts SEND(m, r)
//   on SEND:   multicast ECHO(m, r)        (once per (origin, r))
//   on 2f+1 ECHO or f+1 READY for the same m: multicast READY(m, r) (once)
//   on 2f+1 READY for the same m: r_deliver(m, r, origin)
//
// Thresholds are stake-weighted via Committee. Tolerates f Byzantine parties
// including an equivocating origin: Agreement, Integrity and Validity hold,
// which the rbc tests check directly against Definition 1.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "hammerhead/common/types.h"
#include "hammerhead/crypto/committee.h"
#include "hammerhead/net/network.h"
#include "hammerhead/sim/simulator.h"

namespace hammerhead::rbc {

using Payload = std::vector<std::uint8_t>;

enum class RbcPhase : std::uint8_t { Send, Echo, Ready };

struct RbcMessage final : net::Message {
  RbcPhase phase = RbcPhase::Send;
  ValidatorIndex origin = 0;
  Round round = 0;
  Payload payload;

  std::size_t wire_size() const override { return payload.size() + 16; }
  const char* type_name() const override {
    switch (phase) {
      case RbcPhase::Send: return "rbc-send";
      case RbcPhase::Echo: return "rbc-echo";
      case RbcPhase::Ready: return "rbc-ready";
    }
    return "rbc";
  }
};

/// One reliable-broadcast endpoint. Owns the node's network handler; intended
/// for dedicated RBC simulations and tests.
class BrachaBroadcaster {
 public:
  /// r_deliver(m, r, origin)
  using DeliverFn =
      std::function<void(const Payload&, Round, ValidatorIndex)>;

  BrachaBroadcaster(net::Network& network, const crypto::Committee& committee,
                    ValidatorIndex self, DeliverFn deliver);

  /// Definition 1: r_bcast_i(m, r).
  void r_bcast(Payload payload, Round round);

  /// Number of distinct (origin, round) slots delivered so far.
  std::size_t delivered_count() const { return delivered_; }

 private:
  struct SlotKey {
    ValidatorIndex origin;
    Round round;
    auto operator<=>(const SlotKey&) const = default;
  };
  struct SlotState {
    bool sent_echo = false;
    bool sent_ready = false;
    bool delivered = false;
    // Supporters per candidate payload digest (an equivocating origin can
    // induce several candidates; thresholds apply per candidate).
    std::map<Digest, std::set<ValidatorIndex>> echoes;
    std::map<Digest, std::set<ValidatorIndex>> readies;
    std::map<Digest, Payload> payloads;
  };

  void on_message(ValidatorIndex from, const net::MessagePtr& msg);
  void handle(ValidatorIndex from, const RbcMessage& m);
  void multicast(RbcPhase phase, ValidatorIndex origin, Round round,
                 Payload payload);
  Stake stake_of(const std::set<ValidatorIndex>& set) const;
  void maybe_progress(const SlotKey& key, SlotState& slot);

  net::Network& network_;
  const crypto::Committee& committee_;
  ValidatorIndex self_;
  DeliverFn deliver_;
  std::map<SlotKey, SlotState> slots_;
  std::size_t delivered_ = 0;
};

}  // namespace hammerhead::rbc

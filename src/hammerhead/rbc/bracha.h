// Bracha-style Byzantine Reliable Broadcast (Definition 1 in the paper).
//
// HammerHead's DAG layer realizes reliable broadcast through Narwhal
// certificates (a certificate is transferable proof that 2f+1 validators saw
// one unique header per (author, round)). This module provides the classic
// message-based primitive as a standalone, independently tested substrate:
//
//   r_bcast:   origin multicasts SEND(m, r)
//   on SEND:   multicast ECHO(m, r)        (once per (origin, r))
//   on 2f+1 ECHO or f+1 READY for the same m: multicast READY(m, r) (once)
//   on 2f+1 READY for the same m: r_deliver(m, r, origin)
//
// Thresholds are stake-weighted via Committee. Tolerates f Byzantine parties
// including an equivocating origin: Agreement, Integrity and Validity hold,
// which the rbc tests check directly against Definition 1.
//
// Tally layout: per (origin, round) slot, a flat vector of payload
// candidates (normally one; an equivocating origin induces a few), each with
// a voter bitset and an incrementally maintained stake sum per phase — the
// same flat/stamped philosophy as common/stamped_set.h, replacing the former
// std::map<Digest, std::set<ValidatorIndex>> tally trees (no per-message
// node allocations, no re-summing stake on every threshold check).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "hammerhead/common/types.h"
#include "hammerhead/crypto/committee.h"
#include "hammerhead/net/network.h"
#include "hammerhead/sim/simulator.h"

namespace hammerhead::rbc {

using Payload = std::vector<std::uint8_t>;

enum class RbcPhase : std::uint8_t { Send, Echo, Ready };

struct RbcMessage final : net::Message {
  RbcPhase phase = RbcPhase::Send;
  ValidatorIndex origin = 0;
  Round round = 0;
  Payload payload;

  std::size_t wire_size() const override { return payload.size() + 16; }
  const char* type_name() const override {
    switch (phase) {
      case RbcPhase::Send: return "rbc-send";
      case RbcPhase::Echo: return "rbc-echo";
      case RbcPhase::Ready: return "rbc-ready";
    }
    return "rbc";
  }
  net::MsgKind kind() const override { return net::MsgKind::Rbc; }
};

/// One reliable-broadcast endpoint. Owns the node's network sink; intended
/// for dedicated RBC simulations and tests.
class BrachaBroadcaster final : public net::MsgSink {
 public:
  /// r_deliver(m, r, origin)
  using DeliverFn =
      std::function<void(const Payload&, Round, ValidatorIndex)>;

  BrachaBroadcaster(net::Network& network, const crypto::Committee& committee,
                    ValidatorIndex self, DeliverFn deliver);

  /// Definition 1: r_bcast_i(m, r).
  void r_bcast(Payload payload, Round round);

  /// Number of distinct (origin, round) slots delivered so far.
  std::size_t delivered_count() const { return delivered_; }

  /// net::MsgSink — MsgKind-switched: everything but Rbc traffic is ignored.
  void deliver(ValidatorIndex from, const net::MessagePtr& msg) override;

 private:
  struct SlotKey {
    ValidatorIndex origin;
    Round round;
    bool operator==(const SlotKey&) const = default;
  };
  struct SlotKeyHash {
    std::size_t operator()(const SlotKey& k) const {
      return std::hash<std::uint64_t>{}((std::uint64_t{k.origin} << 48) ^
                                        k.round);
    }
  };
  /// One candidate payload within a slot (distinct digest). Voter sets are
  /// flat bitsets over the committee; stake sums are maintained on insert.
  struct Candidate {
    Digest digest;
    Payload payload;
    Stake echo_stake = 0;
    Stake ready_stake = 0;
    std::vector<std::uint64_t> echo_voters;   // n-bit set
    std::vector<std::uint64_t> ready_voters;  // n-bit set
  };
  struct SlotState {
    bool sent_echo = false;
    bool sent_ready = false;
    bool delivered = false;
    std::vector<Candidate> candidates;  // linear scan; tiny in practice
  };

  void handle(ValidatorIndex from, const RbcMessage& m);
  void multicast(RbcPhase phase, ValidatorIndex origin, Round round,
                 Payload payload);
  Candidate& candidate_for(SlotState& slot, const Digest& digest,
                           const Payload& payload);
  /// Record `voter` in the candidate's phase bitset; returns true (and adds
  /// stake) only on the first vote from that validator.
  bool add_voter(std::vector<std::uint64_t>& bits, ValidatorIndex voter);
  void maybe_progress(const SlotKey& key, SlotState& slot);

  net::Network& network_;
  const crypto::Committee& committee_;
  ValidatorIndex self_;
  DeliverFn deliver_;
  std::size_t voter_words_;
  std::unordered_map<SlotKey, SlotState, SlotKeyHash> slots_;
  std::size_t delivered_ = 0;
};

}  // namespace hammerhead::rbc

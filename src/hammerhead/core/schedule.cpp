#include "hammerhead/core/schedule.h"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <unordered_set>

#include "hammerhead/common/assert.h"
#include "hammerhead/common/rng.h"

namespace hammerhead::core {

BaseSchedule BaseSchedule::make(const crypto::Committee& committee,
                                std::uint64_t seed) {
  // Normalize stakes by their gcd so the slot list stays small, give each
  // validator stake(u)/g consecutive slots, then apply a seeded permutation.
  Stake g = 0;
  for (const auto& v : committee.validators()) g = std::gcd(g, v.stake);
  HH_ASSERT(g > 0);

  std::vector<ValidatorIndex> slots;
  for (const auto& v : committee.validators())
    for (Stake s = 0; s < v.stake / g; ++s) slots.push_back(v.index);

  Rng rng(seed ^ 0x5CEDC0FFEE5EEDULL);
  rng.shuffle(slots);
  return BaseSchedule(std::move(slots));
}

LeaderSwapTable LeaderSwapTable::from_scores(
    const crypto::Committee& committee, const ReputationScores& scores,
    double exclude_fraction) {
  HH_ASSERT(scores.size() == committee.size());
  HH_ASSERT_MSG(exclude_fraction >= 0.0 && exclude_fraction <= 1.0,
                "exclude_fraction " << exclude_fraction);

  // Stake budget for the bad set: the requested fraction of total stake,
  // capped at f (liveness: we can never evict more than the fault bound).
  const Stake requested = static_cast<Stake>(
      static_cast<double>(committee.total_stake()) * exclude_fraction);
  const Stake budget = std::min(requested, committee.max_faulty_stake());

  LeaderSwapTable table;
  Stake used = 0;
  for (ValidatorIndex v : scores.ranked_worst_to_best()) {
    const Stake s = committee.stake_of(v);
    if (used + s > budget) break;
    used += s;
    table.bad_.push_back(v);
  }
  std::sort(table.bad_.begin(), table.bad_.end());

  // G: the |B| best scorers that are not in B ("equal size to B").
  std::unordered_set<ValidatorIndex> bad_set(table.bad_.begin(),
                                             table.bad_.end());
  for (ValidatorIndex v : scores.ranked_best_to_worst()) {
    if (table.good_.size() == table.bad_.size()) break;
    if (bad_set.count(v)) continue;
    table.good_.push_back(v);
  }
  HH_ASSERT(table.good_.size() == table.bad_.size());
  return table;
}

LeaderSwapTable LeaderSwapTable::from_sets(std::vector<ValidatorIndex> bad,
                                           std::vector<ValidatorIndex> good) {
  HH_ASSERT(std::is_sorted(bad.begin(), bad.end()));
  HH_ASSERT(bad.size() == good.size());
  LeaderSwapTable table;
  table.bad_ = std::move(bad);
  table.good_ = std::move(good);
  return table;
}

ValidatorIndex LeaderSwapTable::apply(ValidatorIndex base_leader,
                                      Round round) const {
  if (bad_.empty()) return base_leader;
  if (!std::binary_search(bad_.begin(), bad_.end(), base_leader))
    return base_leader;
  // Round-robin replacement of the evicted slot among the good set,
  // deterministic in the round number.
  return good_[anchor_slot(round) % good_.size()];
}

std::string LeaderSwapTable::to_string() const {
  std::ostringstream os;
  os << "bad={";
  for (std::size_t i = 0; i < bad_.size(); ++i)
    os << (i ? "," : "") << "v" << bad_[i];
  os << "} good={";
  for (std::size_t i = 0; i < good_.size(); ++i)
    os << (i ? "," : "") << "v" << good_[i];
  os << "}";
  return os.str();
}

ScheduleHistory::ScheduleHistory(BaseSchedule base) : base_(std::move(base)) {
  epochs_.push_back(ScheduleEpoch{0, 0, LeaderSwapTable{}});
}

ValidatorIndex ScheduleHistory::leader(Round round) const {
  const ScheduleEpoch& epoch = epoch_for(round);
  return epoch.table.apply(base_.slot(anchor_slot(round)), round);
}

const ScheduleEpoch& ScheduleHistory::epoch_for(Round round) const {
  // Epochs are few (runs see tens of them); linear scan from the back.
  for (auto it = epochs_.rbegin(); it != epochs_.rend(); ++it)
    if (it->initial_round <= round) return *it;
  return epochs_.front();
}

void ScheduleHistory::install_epochs(
    std::vector<std::pair<Round, LeaderSwapTable>> epochs) {
  HH_ASSERT_MSG(!epochs.empty(), "cannot install an empty epoch sequence");
  std::vector<ScheduleEpoch> installed;
  installed.reserve(epochs.size());
  Round prev = 0;
  for (std::size_t i = 0; i < epochs.size(); ++i) {
    HH_ASSERT_MSG(epochs[i].first >= prev, "epoch rounds must ascend");
    prev = epochs[i].first;
    installed.push_back(
        ScheduleEpoch{epochs[i].first, i, std::move(epochs[i].second)});
  }
  epochs_ = std::move(installed);
}

void ScheduleHistory::push_epoch(Round initial_round, LeaderSwapTable table) {
  HH_ASSERT_MSG(initial_round >= epochs_.back().initial_round,
                "epoch start " << initial_round << " before current "
                               << epochs_.back().initial_round);
  epochs_.push_back(
      ScheduleEpoch{initial_round, epochs_.back().epoch_index + 1,
                    std::move(table)});
}

}  // namespace hammerhead::core

// Reputation scores (Section 3 of the paper).
//
// "Every validator starts with a reputation score of 0. Upon committing a
// sub-dag in Bullshark we update the reputation score of each validator,
// using some deterministic rule [...] each validator receives 1 point each
// time they vote for a leader's proposal."
//
// Scores are a pure function of the committed (ordered) vertex sequence, so
// every honest validator computes identical scores — that is what makes the
// schedule change agreement-safe.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hammerhead/common/assert.h"
#include "hammerhead/common/types.h"

namespace hammerhead::core {

class ReputationScores {
 public:
  explicit ReputationScores(std::size_t num_validators)
      : points_(num_validators, 0) {}

  void add(ValidatorIndex v, std::int64_t delta = 1) {
    HH_ASSERT(v < points_.size());
    points_[v] += delta;
  }

  std::int64_t score_of(ValidatorIndex v) const {
    HH_ASSERT(v < points_.size());
    return points_[v];
  }

  std::size_t size() const { return points_.size(); }
  const std::vector<std::int64_t>& points() const { return points_; }

  void reset() { std::fill(points_.begin(), points_.end(), 0); }

  /// Validator indices sorted by (score ascending, index ascending).
  /// "Any ties [...] are deterministically resolved."
  std::vector<ValidatorIndex> ranked_worst_to_best() const;

  /// Validator indices sorted by (score descending, index ascending).
  std::vector<ValidatorIndex> ranked_best_to_worst() const;

  std::string to_string() const;

 private:
  std::vector<std::int64_t> points_;
};

}  // namespace hammerhead::core

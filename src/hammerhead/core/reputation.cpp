#include "hammerhead/core/reputation.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace hammerhead::core {

std::vector<ValidatorIndex> ReputationScores::ranked_worst_to_best() const {
  std::vector<ValidatorIndex> order(points_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](ValidatorIndex a, ValidatorIndex b) {
                     if (points_[a] != points_[b])
                       return points_[a] < points_[b];
                     return a < b;
                   });
  return order;
}

std::vector<ValidatorIndex> ReputationScores::ranked_best_to_worst() const {
  std::vector<ValidatorIndex> order(points_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](ValidatorIndex a, ValidatorIndex b) {
                     if (points_[a] != points_[b])
                       return points_[a] > points_[b];
                     return a < b;
                   });
  return order;
}

std::string ReputationScores::to_string() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (i) os << " ";
    os << "v" << i << "=" << points_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace hammerhead::core

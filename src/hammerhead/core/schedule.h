// Leader schedules: stake-weighted base round-robin, the bad->good swap table
// derived from reputation scores, and the epoch history that resolves which
// schedule is active for any given round.
//
// Paper, Section 3: the initial schedule S0 is "a fair round-robin unbiased of
// the results of the previous epoch [...] each validator u being the leader of
// TR * stake(u) / total_stake rounds in order and then randomly permute them".
// A schedule change replaces the f lowest-reputation validators' slots with
// the f highest-reputation validators (|G| = |B|), round-robin.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hammerhead/common/types.h"
#include "hammerhead/core/reputation.h"
#include "hammerhead/crypto/committee.h"

namespace hammerhead::core {

/// Anchors live at even rounds; the slot index of round r is r / 2 so that
/// consecutive anchors walk through the schedule.
constexpr std::uint64_t anchor_slot(Round round) { return round / 2; }

/// The stake-weighted, seed-permuted round-robin of leader slots shared by
/// all schedules of a run.
class BaseSchedule {
 public:
  static BaseSchedule make(const crypto::Committee& committee,
                           std::uint64_t seed);

  /// Base leader for slot `i` (wraps around).
  ValidatorIndex slot(std::uint64_t i) const {
    return slots_[i % slots_.size()];
  }

  std::size_t num_slots() const { return slots_.size(); }
  const std::vector<ValidatorIndex>& slots() const { return slots_; }

 private:
  explicit BaseSchedule(std::vector<ValidatorIndex> slots)
      : slots_(std::move(slots)) {}
  std::vector<ValidatorIndex> slots_;
};

/// bad -> good replacement derived from one epoch's reputation scores.
class LeaderSwapTable {
 public:
  /// No swaps (schedule S0).
  LeaderSwapTable() = default;

  /// Select B = lowest scorers whose cumulative stake stays within
  /// min(exclude_fraction * total_stake, max_faulty_stake), and G = the
  /// |B| best scorers among the rest. Ties resolve deterministically by
  /// validator index.
  static LeaderSwapTable from_scores(const crypto::Committee& committee,
                                     const ReputationScores& scores,
                                     double exclude_fraction);

  /// Reconstruct from explicit sets (state-sync installation). `bad` must be
  /// sorted; |good| == |bad|.
  static LeaderSwapTable from_sets(std::vector<ValidatorIndex> bad,
                                   std::vector<ValidatorIndex> good);

  /// Resolve the effective leader for `round` given the base-schedule choice.
  ValidatorIndex apply(ValidatorIndex base_leader, Round round) const;

  bool is_identity() const { return bad_.empty(); }
  const std::vector<ValidatorIndex>& bad() const { return bad_; }
  const std::vector<ValidatorIndex>& good() const { return good_; }

  std::string to_string() const;

 private:
  std::vector<ValidatorIndex> bad_;   // sorted
  std::vector<ValidatorIndex> good_;  // ranked best first
};

/// One schedule epoch: the swap table active from `initial_round` (inclusive)
/// until the next epoch's initial round.
struct ScheduleEpoch {
  Round initial_round = 0;
  std::uint64_t epoch_index = 0;
  LeaderSwapTable table;
};

/// The full sequence of schedules a validator has advanced through. Leaders
/// are resolved against the epoch covering the queried round, which is what
/// lets a validator retroactively re-interpret rounds it processed late
/// (Section 3.1: "they need to retroactively apply the new schedule").
class ScheduleHistory {
 public:
  ScheduleHistory(BaseSchedule base);

  /// Effective leader of `round` under the epoch covering that round. Rounds
  /// beyond the last epoch's start use the latest schedule.
  ValidatorIndex leader(Round round) const;

  /// Begin a new epoch at `initial_round` (must be >= the current epoch's
  /// initial round).
  void push_epoch(Round initial_round, LeaderSwapTable table);

  /// Replace the whole epoch sequence (state-sync installation). The list
  /// must be non-empty and ascending in initial_round; epoch indices are
  /// renumbered 0..k.
  void install_epochs(std::vector<std::pair<Round, LeaderSwapTable>> epochs);

  const ScheduleEpoch& current() const { return epochs_.back(); }
  const ScheduleEpoch& epoch_for(Round round) const;
  std::size_t num_epochs() const { return epochs_.size(); }
  const std::vector<ScheduleEpoch>& epochs() const { return epochs_; }
  const BaseSchedule& base() const { return base_; }

 private:
  BaseSchedule base_;
  std::vector<ScheduleEpoch> epochs_;  // ascending initial_round
};

}  // namespace hammerhead::core

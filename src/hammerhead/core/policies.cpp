#include "hammerhead/core/policies.h"

#include "hammerhead/common/logging.h"

namespace hammerhead::core {

namespace {
bool cadence_due(const ScheduleCadence& cadence, Round anchor_round,
                 Round epoch_initial_round, std::uint64_t commits_in_epoch) {
  switch (cadence.kind) {
    case ScheduleCadence::Kind::Rounds:
      // Algorithm 2 line 30-31: t <- initialRound + T; if t <= anchor.round.
      return epoch_initial_round + cadence.value <= anchor_round;
    case ScheduleCadence::Kind::Commits:
      return commits_in_epoch >= cadence.value;
  }
  return false;
}
}  // namespace

// ---------------------------------------------------------------- RoundRobin

RoundRobinPolicy::RoundRobinPolicy(const crypto::Committee& committee,
                                   std::uint64_t seed)
    : history_(BaseSchedule::make(committee, seed)) {}

ValidatorIndex RoundRobinPolicy::leader(Round round) const {
  return history_.leader(round);
}

// ---------------------------------------------------------------- HammerHead

HammerHeadPolicy::HammerHeadPolicy(const crypto::Committee& committee,
                                   std::uint64_t seed, HammerHeadConfig config)
    : committee_(committee),
      config_(config),
      history_(BaseSchedule::make(committee, seed)),
      scores_(committee.size()) {}

ValidatorIndex HammerHeadPolicy::leader(Round round) const {
  return history_.leader(round);
}

void HammerHeadPolicy::on_vertex_ordered(const dag::Dag& dag,
                                         const dag::Certificate& v) {
  // "each validator receives 1 point each time they vote for a leader's
  // proposal (a parent link from the block of the validator at round r to
  // the leader, according to schedule S, of round r-1)".
  if (v.round() == 0) return;
  const Round prev = v.round() - 1;
  const ValidatorIndex prev_leader = leader(prev);
  const dag::CertPtr leader_cert = dag.get(prev, prev_leader);
  if (leader_cert && v.has_parent(leader_cert->digest()))
    scores_.add(v.author());
}

bool HammerHeadPolicy::on_anchor_committed(const dag::Certificate& anchor) {
  ++commits_in_epoch_;
  // Sui-style commits cadence: after the K-th commit of the epoch, the new
  // schedule takes effect from the *next* anchor round; the boundary anchor
  // stays committed under the old schedule.
  if (config_.cadence.kind != ScheduleCadence::Kind::Commits) return false;
  if (commits_in_epoch_ < config_.cadence.value) return false;
  LeaderSwapTable table = LeaderSwapTable::from_scores(
      committee_, scores_, config_.exclude_fraction);
  HH_DEBUG("hammerhead: new epoch @round " << anchor.round() + 2 << " "
                                           << table.to_string() << " scores "
                                           << scores_.to_string());
  history_.push_epoch(anchor.round() + 2, std::move(table));
  scores_.reset();
  commits_in_epoch_ = 0;
  return true;
}

bool HammerHeadPolicy::maybe_change_schedule(Round anchor_round) {
  // Algorithm 2 (rounds cadence): checked before ordering the anchor; the
  // new epoch starts at the boundary anchor's round.
  if (config_.cadence.kind != ScheduleCadence::Kind::Rounds) return false;
  const ScheduleEpoch& epoch = history_.current();
  if (!cadence_due(config_.cadence, anchor_round, epoch.initial_round,
                   commits_in_epoch_))
    return false;
  LeaderSwapTable table = LeaderSwapTable::from_scores(
      committee_, scores_, config_.exclude_fraction);
  HH_DEBUG("hammerhead: new epoch @round " << anchor_round << " "
                                           << table.to_string() << " scores "
                                           << scores_.to_string());
  history_.push_epoch(anchor_round, std::move(table));
  scores_.reset();
  commits_in_epoch_ = 0;
  return true;
}

namespace {
PolicySnapshot make_snapshot(const ScheduleHistory& history,
                             const ReputationScores& scores,
                             std::uint64_t commits_in_epoch) {
  PolicySnapshot snap;
  for (const auto& epoch : history.epochs()) {
    PolicySnapshot::Epoch e;
    e.initial_round = epoch.initial_round;
    e.bad = epoch.table.bad();
    e.good = epoch.table.good();
    snap.epochs.push_back(std::move(e));
  }
  snap.scores = scores.points();
  snap.commits_in_epoch = commits_in_epoch;
  return snap;
}

void apply_snapshot(const PolicySnapshot& snap, ScheduleHistory& history,
                    ReputationScores& scores,
                    std::uint64_t& commits_in_epoch) {
  HH_ASSERT_MSG(!snap.epochs.empty(), "empty policy snapshot");
  std::vector<std::pair<Round, LeaderSwapTable>> epochs;
  epochs.reserve(snap.epochs.size());
  for (const auto& e : snap.epochs)
    epochs.emplace_back(e.initial_round,
                        LeaderSwapTable::from_sets(e.bad, e.good));
  history.install_epochs(std::move(epochs));
  scores.reset();
  HH_ASSERT(snap.scores.size() == scores.size());
  for (std::size_t v = 0; v < snap.scores.size(); ++v)
    scores.add(static_cast<ValidatorIndex>(v), snap.scores[v]);
  commits_in_epoch = snap.commits_in_epoch;
}
}  // namespace

PolicySnapshot HammerHeadPolicy::snapshot() const {
  return make_snapshot(history_, scores_, commits_in_epoch_);
}

void HammerHeadPolicy::install_snapshot(const PolicySnapshot& snap) {
  apply_snapshot(snap, history_, scores_, commits_in_epoch_);
}

// ----------------------------------------------------------------- ShoalLike

ShoalLikePolicy::ShoalLikePolicy(const crypto::Committee& committee,
                                 std::uint64_t seed, HammerHeadConfig config)
    : committee_(committee),
      config_(config),
      history_(BaseSchedule::make(committee, seed)),
      scores_(committee.size()) {}

ValidatorIndex ShoalLikePolicy::leader(Round round) const {
  return history_.leader(round);
}

bool ShoalLikePolicy::on_anchor_committed(const dag::Certificate& anchor) {
  scores_.add(anchor.author(), +1);
  ++commits_in_epoch_;
  if (config_.cadence.kind != ScheduleCadence::Kind::Commits) return false;
  if (commits_in_epoch_ < config_.cadence.value) return false;
  LeaderSwapTable table = LeaderSwapTable::from_scores(
      committee_, scores_, config_.exclude_fraction);
  history_.push_epoch(anchor.round() + 2, std::move(table));
  scores_.reset();
  commits_in_epoch_ = 0;
  return true;
}

void ShoalLikePolicy::on_anchor_skipped(Round, ValidatorIndex leader) {
  scores_.add(leader, -1);
}

bool ShoalLikePolicy::maybe_change_schedule(Round anchor_round) {
  if (config_.cadence.kind != ScheduleCadence::Kind::Rounds) return false;
  const ScheduleEpoch& epoch = history_.current();
  if (!cadence_due(config_.cadence, anchor_round, epoch.initial_round,
                   commits_in_epoch_))
    return false;
  LeaderSwapTable table = LeaderSwapTable::from_scores(
      committee_, scores_, config_.exclude_fraction);
  history_.push_epoch(anchor_round, std::move(table));
  scores_.reset();
  commits_in_epoch_ = 0;
  return true;
}

PolicySnapshot ShoalLikePolicy::snapshot() const {
  return make_snapshot(history_, scores_, commits_in_epoch_);
}

void ShoalLikePolicy::install_snapshot(const PolicySnapshot& snap) {
  apply_snapshot(snap, history_, scores_, commits_in_epoch_);
}

}  // namespace hammerhead::core

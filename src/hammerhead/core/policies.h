// Leader-schedule policies.
//
// The Bullshark committer (consensus/committer.h) is parameterized over a
// LeaderSchedulePolicy; the paper's contribution — HammerHead — is one such
// policy, alongside three comparison points:
//   * RoundRobinPolicy: the Bullshark baseline of the evaluation,
//   * StaticLeaderPolicy: the PBFT-style extreme discussed in Section 7,
//   * ShoalLikePolicy: the concurrent-work scoring rule from Section 7
//     (+ for committed leaders, - for skipped leaders) on the same
//     schedule-change machinery.
//
// Contract (what makes schedule changes safe, Proposition 1):
//  * leader(r) must be a deterministic function of the *ordered vertex
//    prefix* the policy has been fed through on_vertex_ordered /
//    on_anchor_committed / on_anchor_skipped / maybe_change_schedule.
//  * maybe_change_schedule(a) is called by the committer right before anchor
//    `a` would be ordered; returning true means a new epoch starts at round
//    `a` and the committer must re-evaluate pending commits under the new
//    schedule (retroactive application; the boundary anchor's own sub-DAG is
//    NOT yet counted — "up to but excluding the committed leader").
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hammerhead/core/schedule.h"
#include "hammerhead/dag/dag.h"

namespace hammerhead::core {

/// When does a schedule epoch end?
struct ScheduleCadence {
  enum class Kind {
    Rounds,   ///< Algorithm 2: initial_round + T <= anchor.round
    Commits,  ///< Sui: every K committed anchors (eval: 10, mainnet: 300)
  };
  Kind kind = Kind::Commits;
  std::uint64_t value = 10;

  static ScheduleCadence rounds(std::uint64_t t) {
    return {Kind::Rounds, t};
  }
  static ScheduleCadence commits(std::uint64_t k) {
    return {Kind::Commits, k};
  }
};

/// Serializable policy state for state sync: a validator that fell behind
/// the garbage-collection horizon cannot replay the ordered prefix, so it
/// installs a peer's schedule state instead (epochs + current epoch's
/// accumulators). Everything here is a deterministic function of the ordered
/// prefix, so installing it is equivalent to having replayed.
struct PolicySnapshot {
  struct Epoch {
    Round initial_round = 0;
    std::vector<ValidatorIndex> bad;
    std::vector<ValidatorIndex> good;
  };
  std::vector<Epoch> epochs;
  std::vector<std::int64_t> scores;
  std::uint64_t commits_in_epoch = 0;
};

class LeaderSchedulePolicy {
 public:
  virtual ~LeaderSchedulePolicy() = default;

  /// Effective leader of `round` (getLeader in Algorithm 1).
  virtual ValidatorIndex leader(Round round) const = 0;

  /// A vertex was ordered (delivered) as part of a committed sub-DAG.
  virtual void on_vertex_ordered(const dag::Dag& dag,
                                 const dag::Certificate& v) {
    (void)dag;
    (void)v;
  }

  /// An anchor was committed (called after its sub-DAG was ordered).
  /// Returning true begins a new schedule epoch effective from the *next*
  /// anchor round (anchor.round + 2) — the Sui-style commits cadence, where
  /// the boundary anchor itself stays committed under the old schedule. The
  /// committer re-evaluates pending commits when this returns true.
  virtual bool on_anchor_committed(const dag::Certificate& anchor) {
    (void)anchor;
    return false;
  }

  /// An even round between two committed anchors produced no committed
  /// anchor; `leader` was that round's (skipped) leader.
  virtual void on_anchor_skipped(Round round, ValidatorIndex leader) {
    (void)round;
    (void)leader;
  }

  /// Called right before the anchor at `anchor_round` would be ordered.
  /// Returning true begins a new schedule epoch at `anchor_round`, i.e. the
  /// boundary anchor itself is re-evaluated under the new schedule — the
  /// paper's Algorithm 2 (rounds cadence).
  virtual bool maybe_change_schedule(Round anchor_round) {
    (void)anchor_round;
    return false;
  }

  virtual std::string name() const = 0;

  /// Introspection for tests, metrics and examples (null if the policy has
  /// no schedule history, e.g. the static leader).
  virtual const ScheduleHistory* history() const { return nullptr; }

  /// State-sync support (see PolicySnapshot). Stateless policies use the
  /// defaults.
  virtual PolicySnapshot snapshot() const { return {}; }
  virtual void install_snapshot(const PolicySnapshot& snap) { (void)snap; }
};

/// The Bullshark baseline: stake-weighted round-robin, never changes.
class RoundRobinPolicy final : public LeaderSchedulePolicy {
 public:
  RoundRobinPolicy(const crypto::Committee& committee, std::uint64_t seed);

  ValidatorIndex leader(Round round) const override;
  std::string name() const override { return "round-robin"; }
  const ScheduleHistory* history() const override { return &history_; }

 private:
  ScheduleHistory history_;
};

/// PBFT-style fixed leader (Section 7: "the risk of having a leader that
/// performs just slow enough ... is too great").
class StaticLeaderPolicy final : public LeaderSchedulePolicy {
 public:
  explicit StaticLeaderPolicy(ValidatorIndex leader) : leader_(leader) {}

  ValidatorIndex leader(Round) const override { return leader_; }
  std::string name() const override { return "static-leader"; }

 private:
  ValidatorIndex leader_;
};

struct HammerHeadConfig {
  ScheduleCadence cadence = ScheduleCadence::commits(10);
  /// Stake fraction of the committee evicted from the schedule each epoch
  /// (capped at the fault bound f). Eval: 1/3; Sui mainnet: 0.2.
  double exclude_fraction = 1.0 / 3.0;
};

/// The paper's protocol: +1 reputation per ordered vertex that voted for the
/// previous round's leader; every epoch the worst f swap out for the best f.
class HammerHeadPolicy final : public LeaderSchedulePolicy {
 public:
  HammerHeadPolicy(const crypto::Committee& committee, std::uint64_t seed,
                   HammerHeadConfig config = {});

  ValidatorIndex leader(Round round) const override;
  void on_vertex_ordered(const dag::Dag& dag,
                         const dag::Certificate& v) override;
  bool on_anchor_committed(const dag::Certificate& anchor) override;
  bool maybe_change_schedule(Round anchor_round) override;
  std::string name() const override { return "hammerhead"; }
  const ScheduleHistory* history() const override { return &history_; }
  PolicySnapshot snapshot() const override;
  void install_snapshot(const PolicySnapshot& snap) override;

  const ReputationScores& scores() const { return scores_; }
  std::uint64_t commits_in_epoch() const { return commits_in_epoch_; }

 private:
  const crypto::Committee& committee_;
  HammerHeadConfig config_;
  ScheduleHistory history_;
  ReputationScores scores_;
  std::uint64_t commits_in_epoch_ = 0;
};

/// Shoal-like scoring on HammerHead's schedule machinery: committed leaders
/// gain a point, skipped leaders lose one. Voting activity is ignored, which
/// is exactly the contrast Section 7 draws ("HammerHead assigns scores based
/// on the frequency of votes for leaders, discouraging Byzantine actors from
/// withholding their votes").
class ShoalLikePolicy final : public LeaderSchedulePolicy {
 public:
  ShoalLikePolicy(const crypto::Committee& committee, std::uint64_t seed,
                  HammerHeadConfig config = {});

  ValidatorIndex leader(Round round) const override;
  bool on_anchor_committed(const dag::Certificate& anchor) override;
  void on_anchor_skipped(Round round, ValidatorIndex leader) override;
  bool maybe_change_schedule(Round anchor_round) override;
  std::string name() const override { return "shoal-like"; }
  const ScheduleHistory* history() const override { return &history_; }
  PolicySnapshot snapshot() const override;
  void install_snapshot(const PolicySnapshot& snap) override;

  const ReputationScores& scores() const { return scores_; }

 private:
  const crypto::Committee& committee_;
  HammerHeadConfig config_;
  ScheduleHistory history_;
  ReputationScores scores_;
  std::uint64_t commits_in_epoch_ = 0;
};

}  // namespace hammerhead::core
